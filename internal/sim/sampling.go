package sim

import (
	"context"
	"fmt"

	"rrmpcm/internal/stats"
	"rrmpcm/internal/timing"
)

// SamplingSpec configures SMARTS-style interval sampling of a run: the
// measured Duration is split into Windows equal segments, each segment
// contributes one detailed measurement window of length Window (preceded
// by DetailWarmup of detailed-but-discarded pre-roll that rebuilds queue
// and row-buffer state after a functional fast-forward), and the gaps
// between windows are fast-forwarded in functional-only mode. The
// executor lives in internal/sampling; this type lives here so it can
// ride on Config (and through the engine's config hash) without an
// import cycle.
//
// Error-vs-speed knob: more/longer windows shrink the confidence
// intervals and raise the detailed-coverage fraction
// Windows*(DetailWarmup+Window)/Duration, which is what bounds the
// speedup.
type SamplingSpec struct {
	// Windows is the number of detailed measurement windows (>= 2, so a
	// variance — and therefore a confidence interval — exists).
	Windows int `json:"windows"`
	// Window is the measured length of each detailed window.
	Window timing.Time `json:"window"`
	// DetailWarmup is detailed pre-roll simulated before each window's
	// measurement starts; its metrics are discarded.
	DetailWarmup timing.Time `json:"detail_warmup"`
	// FFStride thins the functional warming between windows: of each
	// inter-snapshot gap only the trailing 1/FFStride is fast-forwarded
	// with full functional traffic; the leading remainder is skipped with
	// the cores parked while event-driven machinery (RRM decay and
	// refreshes, patrol scrub, retention deadlines) still runs on true
	// simulated time. 0 and 1 both mean full warming. Values above 1
	// trade fidelity of slowly-evolving architectural state (cache
	// dirtiness, RRM heat) for speed; they are meant for long runs whose
	// state has reached steady state, where the per-window detailed
	// pre-roll rebuilds what the skip left stale.
	FFStride int `json:"ff_stride,omitempty"`
}

// Validate checks the spec against the run duration it will sample.
func (sp SamplingSpec) Validate(duration timing.Time) error {
	if sp.Windows < 2 {
		return fmt.Errorf("sim: sampling needs >= 2 windows (have %d)", sp.Windows)
	}
	if sp.Window <= 0 {
		return fmt.Errorf("sim: non-positive sampling window %v", sp.Window)
	}
	if sp.DetailWarmup < 0 {
		return fmt.Errorf("sim: negative sampling detail warmup %v", sp.DetailWarmup)
	}
	if sp.FFStride < 0 {
		return fmt.Errorf("sim: negative sampling fast-forward stride %d", sp.FFStride)
	}
	seg := duration / timing.Time(sp.Windows)
	if sp.DetailWarmup+sp.Window > seg {
		return fmt.Errorf("sim: sampling window %v + detail warmup %v exceed the %v segment (%v / %d windows)",
			sp.Window, sp.DetailWarmup, seg, duration, sp.Windows)
	}
	return nil
}

// Stride returns the effective fast-forward stride (>= 1).
func (sp SamplingSpec) Stride() int {
	if sp.FFStride < 2 {
		return 1
	}
	return sp.FFStride
}

// Coverage returns the detailed-simulation fraction of the duration.
func (sp SamplingSpec) Coverage(duration timing.Time) float64 {
	if duration <= 0 {
		return 0
	}
	return float64(sp.Windows) * float64(sp.DetailWarmup+sp.Window) / float64(duration)
}

// SamplingReport is the statistical summary attached to the metrics of a
// sampled run: per-metric means with two-sided Student-t confidence
// intervals over the window samples. Absent (nil) for full runs, so
// their metrics documents are unchanged.
type SamplingReport struct {
	Windows             int     `json:"windows"`
	WindowSeconds       float64 `json:"window_seconds"`
	DetailWarmupSeconds float64 `json:"detail_warmup_seconds"`
	// Coverage is the detailed fraction of the sampled duration.
	Coverage float64 `json:"coverage"`
	// Confidence is the two-sided confidence level of the intervals.
	Confidence float64 `json:"confidence"`

	IPC                stats.Interval `json:"ipc"`
	LLCMPKI            stats.Interval `json:"llc_mpki"`
	WearTotalRate      stats.Interval `json:"wear_total_rate"`
	LifetimeYears      stats.Interval `json:"lifetime_years"`
	ShortWriteFraction stats.Interval `json:"short_write_fraction"`
}

// FastForward advances a warmed system by span in functional-only mode:
// caches, write-policy state (RRM tables), wear, energy and retention
// deadlines all advance, but detailed timing — memory-controller
// scheduling, event-queue request latencies, reliability read-path
// inspection — is skipped. LLC misses charge a flat unloaded read
// latency, and memory writes and refreshes complete instantly at issue.
// The system stays warmed: FastForward can be interleaved with Snapshot
// to place measurement-window forks, and chunked fast-forwards compose
// exactly (FF(a) then FF(b) equals FF(a+b) bit for bit).
func (s *System) FastForward(ctx context.Context, span timing.Time) error {
	if s.phase != phaseWarm {
		return fmt.Errorf("sim: FastForward called on a %s system", s.phase)
	}
	if span < 0 {
		return fmt.Errorf("sim: negative fast-forward span %v", span)
	}
	if span == 0 {
		return nil
	}
	// Lift the stop horizon: fast-forward targets are chosen by the
	// sampler, not by cfg.Duration, and a core halted at a stale horizon
	// (cfg.Duration's, or a preceding SkipForward's) would never rearm.
	// Measure/MeasureWindow re-assert their own.
	now := s.eq.Now()
	for _, c := range s.cores {
		c.StopAt(timing.Forever)
		c.EnsureRunning(now)
	}
	s.functional = true
	defer func() { s.functional = false }()
	before := s.Instructions()
	err := s.runUntil(ctx, now+span)
	s.ffInsts, s.ffSpan = s.Instructions()-before, span
	return err
}

// Advance runs detailed simulation for span on a warmed system without
// measuring anything: the sampler's calibration probe, which observes the
// detailed machine's current instruction rate (via Instructions) so the
// functional fast-forward can be servoed to match it. The system stays
// warmed.
func (s *System) Advance(ctx context.Context, span timing.Time) error {
	if s.phase != phaseWarm {
		return fmt.Errorf("sim: Advance called on a %s system", s.phase)
	}
	if span < 0 {
		return fmt.Errorf("sim: negative advance span %v", span)
	}
	if span == 0 {
		return nil
	}
	now := s.eq.Now()
	for _, c := range s.cores {
		c.StopAt(timing.Forever)
		c.EnsureRunning(now)
	}
	return s.runUntil(ctx, now+span)
}

// Instructions returns the total instructions retired across all cores.
func (s *System) Instructions() uint64 {
	var n uint64
	for _, c := range s.cores {
		n += c.Stats().Instructions
	}
	return n
}

// FunctionalRate returns instructions per simulated second executed
// during the most recent FastForward, or 0 before the first one.
func (s *System) FunctionalRate() float64 {
	if s.ffSpan <= 0 {
		return 0
	}
	return float64(s.ffInsts) / s.ffSpan.Seconds()
}

// ScaleFunctionalLatency multiplies the flat per-miss latency charged in
// functional mode by factor, clamped to [1/8, 16]x the configured base.
// The sampler's feedback loop uses it to keep the functional machine's
// instruction rate on the detailed machine's trajectory as the workload
// drifts (write backpressure and policy demotion slow the detailed
// machine in ways a fixed flat latency cannot track).
func (s *System) ScaleFunctionalLatency(factor float64) {
	lat := timing.Time(float64(s.backend.flatReadLat) * factor)
	if min := s.backend.flatBase / 8; lat < min {
		lat = min
	}
	if max := s.backend.flatBase * 16; lat > max {
		lat = max
	}
	s.backend.flatReadLat = lat
}

// SkipForward advances a warmed system by span with the cores parked: no
// instructions execute and no demand traffic reaches the caches, but the
// event queue still runs in functional mode, so time-driven machinery —
// RRM decay ticks and refreshes, patrol scrub, retention deadlines, and
// the drain of any in-flight requests — advances on true simulated time.
// It is the cheap half of a strided fast-forward (SamplingSpec.FFStride):
// architectural state freezes, retention state does not.
func (s *System) SkipForward(ctx context.Context, span timing.Time) error {
	if s.phase != phaseWarm {
		return fmt.Errorf("sim: SkipForward called on a %s system", s.phase)
	}
	if span < 0 {
		return fmt.Errorf("sim: negative skip span %v", span)
	}
	if span == 0 {
		return nil
	}
	// Park every core at the current horizon: an armed step fires, sees
	// the horizon and returns without rearming. A later FastForward or
	// MeasureWindow re-arms via EnsureRunning.
	now := s.eq.Now()
	for _, c := range s.cores {
		c.StopAt(now)
	}
	// Heat decay models traffic recency; with the write stream paused it
	// must pause too, or the skip would demote every hot region the
	// windows depend on. Retention and patrol timers keep running — they
	// track real deadlines, which is the point of skipping on true time.
	if ds, ok := s.policy.(interface{ SuspendDecay(bool) }); ok {
		ds.SuspendDecay(true)
		defer ds.SuspendDecay(false)
	}
	s.functional = true
	defer func() { s.functional = false }()
	return s.runUntil(ctx, now+span)
}

// MeasureWindow measures one detailed sampling window of a warmed
// system: preroll of detailed simulation is run and discarded (it
// rebuilds the timing state a functional fast-forward does not track),
// then window is measured and collected exactly like Measure's full
// Duration. Like Measure, it consumes the system.
func (s *System) MeasureWindow(ctx context.Context, preroll, window timing.Time) (Metrics, error) {
	if s.phase != phaseWarm {
		return Metrics{}, fmt.Errorf("sim: MeasureWindow called on a %s system", s.phase)
	}
	if window <= 0 {
		return Metrics{}, fmt.Errorf("sim: non-positive measurement window %v", window)
	}
	if preroll < 0 {
		return Metrics{}, fmt.Errorf("sim: negative detail warmup %v", preroll)
	}
	now := s.eq.Now()
	end := now + preroll + window
	for _, c := range s.cores {
		c.StopAt(end)
		// A fork restored from a snapshot taken after a SkipForward has
		// its cores parked (no armed step to re-create); wake them.
		c.EnsureRunning(now)
	}
	if err := s.runUntil(ctx, end-window); err != nil {
		return Metrics{}, err
	}
	s.captureBaseline()
	return s.finishMeasure(ctx, end, window)
}
