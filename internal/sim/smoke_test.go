package sim

import (
	"fmt"
	"os"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
	"testing"
)

// TestSmokeRun is a manual calibration harness: SMOKE_WORKLOAD selects
// the workload (default GemsFDTD).
func TestSmokeRun(t *testing.T) {
	if os.Getenv("SMOKE") == "" {
		t.Skip("calibration harness; set SMOKE=1")
	}
	name := os.Getenv("SMOKE_WORKLOAD")
	if name == "" {
		name = "GemsFDTD"
	}
	w, err := trace.WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, sch := range []Scheme{StaticScheme(pcm.Mode7SETs), StaticScheme(pcm.Mode4SETs), StaticScheme(pcm.Mode3SETs), RRMScheme()} {
		cfg := DefaultConfig(sch, w)
		cfg.Duration = 60 * timing.Millisecond
		cfg.Warmup = 20 * timing.Millisecond
		cfg.TimeScale = 50
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%-14s IPC=%.3f MPKI=%.1f rd/s=%.3g wr/s=%.3g refr=%d shortFrac=%.2f wearRRM/s=%.3g life=%.2fy viol=%d hot=%d/%d rdLat=%v pause=%d thr=%d\n",
			m.Scheme, m.IPC, m.LLCMPKI, float64(m.ReadsServed)/m.SimSeconds, float64(m.WritesServed)/m.SimSeconds, m.RefreshesServed, m.ShortWriteFraction,
			m.WearRRMRate, m.LifetimeYears, m.RetentionViolations, m.HotEntries, m.HotBlocks, m.AvgReadLatency, m.WritePauses, m.RefreshBacklogMax)
		if m.FirstViolation != "" {
			fmt.Printf("   first violation: %s\n", m.FirstViolation)
		}
	}
}
