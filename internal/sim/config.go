// Package sim assembles the full system of Tables IV and V: four interval
// OoO cores running synthetic SPEC-like workloads against the cache
// hierarchy, a write policy (RRM or Static-N), the PCM memory controller
// and the wear/energy/retention bookkeeping — and runs the experiment,
// producing the metrics every figure of the paper is built from.
//
// # Time scaling
//
// The paper simulates 5 s of wall time because the retention machinery
// works at seconds scale (2 s fast-refresh interrupts, 0.125 s decay
// ticks, 2.01..3054.9 s retentions). Simulating seconds of 4-core traffic
// event by event is prohibitive, so the simulator runs the *demand* side
// at native rates for a short window (tens of milliseconds) and
// accelerates only the *retention clock*: FastRefreshInterval,
// DecayInterval, the retention deadlines of the checker and the global
// refresh accounting are all divided by TimeScale. When metrics are
// extracted, refresh-caused quantities (wear, energy, queue traffic) are
// divided by TimeScale again, which restores real rates exactly because
// refresh work is purely clock-driven. Demand-side rates are measured
// directly. Hotness classification is count-based (hot_threshold dirty
// writes), so it is unaffected by the clock scaling, and the decay
// mechanism sees proportionally compressed windows. TimeScale=1 with
// Duration=5 s reproduces the paper's literal setup.
package sim

import (
	"fmt"

	"rrmpcm/internal/cache"
	"rrmpcm/internal/core"
	"rrmpcm/internal/dram"
	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/reliability"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// SchemeKind selects the write policy family.
type SchemeKind int

const (
	// SchemeStatic is a Static-N-SETs baseline of Table VI.
	SchemeStatic SchemeKind = iota
	// SchemeRRM is the paper's Region Retention Monitor.
	SchemeRRM
	// SchemeCustom plugs in a user-provided WritePolicy.
	SchemeCustom
)

// Scheme selects and parameterizes the write policy of a run.
type Scheme struct {
	Kind SchemeKind

	// StaticMode is the fixed write mode for SchemeStatic.
	StaticMode pcm.WriteMode

	// RRM configures SchemeRRM with *unscaled* paper constants; the
	// simulator applies TimeScale to the periodic intervals.
	RRM core.RRMConfig

	// Custom is the policy for SchemeCustom. If it implements
	// interface{ Start(*timing.EventQueue) } it is started with the
	// simulation's event queue.
	Custom core.WritePolicy
}

// StaticScheme returns the Static-N baseline for the given mode.
func StaticScheme(mode pcm.WriteMode) Scheme {
	return Scheme{Kind: SchemeStatic, StaticMode: mode}
}

// RRMScheme returns the default-configured RRM scheme.
func RRMScheme() Scheme {
	return Scheme{Kind: SchemeRRM, RRM: core.DefaultRRMConfig()}
}

// Name returns the scheme's display name (Table VI style).
func (s Scheme) Name() string {
	switch s.Kind {
	case SchemeStatic:
		return fmt.Sprintf("Static-%d-SETs", s.StaticMode.Sets())
	case SchemeRRM:
		return "RRM"
	default:
		if s.Custom != nil {
			return s.Custom.Name()
		}
		return "custom"
	}
}

// Config describes one simulation run.
type Config struct {
	Device    pcm.DeviceConfig
	Hierarchy cache.HierarchyConfig
	Ctrl      memctrl.Config
	Scheme    Scheme
	Workload  trace.Workload

	// Duration is the measured simulation window (after Warmup).
	Duration timing.Time
	// Warmup runs before measurement starts (cache warmup, hot-set
	// formation).
	Warmup timing.Time
	// TimeScale accelerates the retention clock (see package comment).
	TimeScale float64
	// Seed makes runs reproducible; each core derives a sub-seed.
	Seed uint64

	// HitStallFactor is the fraction of L2/LLC hit latency charged to
	// the core synchronously (the rest is assumed hidden by the OoO
	// window). L1 hits are fully pipelined.
	HitStallFactor float64

	// CheckRetention enables the per-block retention deadline checker
	// (always on in tests; cheap enough to leave on everywhere).
	CheckRetention bool

	// Reliability configures the drift-fault injection + ECC + scrub
	// model (internal/reliability). Disabled by default: enabling it
	// adds ECC correction stalls to the read path.
	Reliability reliability.Config

	// CoreROB / CoreMSHRs size the cores (Table IV defaults if zero).
	CoreROB   int
	CoreMSHRs int

	// EquivalentDuration is the wall time the run stands for when
	// reporting per-run totals (the paper runs 5 s); metrics scale
	// rates by it. Zero means "report rates only, totals over 5 s".
	EquivalentDuration timing.Time

	// Hybrid, when non-nil, fronts the PCM with a DRAM staging tier and
	// hot-page migration engine (internal/dram): demand traffic to
	// resident pages is served by or absorbed into DRAM, misses feed the
	// promotion policy, and cold-dirty pages demote in coalesced
	// batches. Nil — the default — is the paper's PCM-only machine.
	Hybrid *dram.HybridConfig `json:",omitempty"`

	// Shards selects the sharded execution engine: events are split
	// across per-shard queues — shard 0 carries the cores, write policy
	// and everything channel-independent; each further shard carries a
	// group of memory channels with their bank state and completions —
	// and executed in conservative epoch windows that merge in global
	// (time, seq) order, so metrics and snapshots are byte-identical to
	// the serial engine for any setting. 0 (the default) runs the classic
	// single-queue engine; -1 ("auto") uses one shard per memory channel;
	// a positive count must divide the channel count. Omitted from the
	// JSON identity when zero, so existing config hashes are unchanged.
	Shards int `json:",omitempty"`

	// Sampling, when non-nil, runs the measurement as SMARTS-style
	// interval sampling (internal/sampling) instead of one contiguous
	// detailed window: Duration is covered by Sampling.Windows detailed
	// windows with functional fast-forward between them, and the
	// metrics carry confidence intervals (Metrics.Sampling). Nil — the
	// default — is a full detailed run.
	Sampling *SamplingSpec
}

// DefaultConfig returns the Tables IV/V system with the given scheme and
// workload and calibrated fast-run settings: a 40 ms measured window at
// TimeScale 100 (retention clock: fast refresh every 20 ms, decay every
// 1.25 ms).
func DefaultConfig(scheme Scheme, w trace.Workload) Config {
	return Config{
		Device:             pcm.DefaultDeviceConfig(),
		Hierarchy:          cache.DefaultHierarchyConfig(),
		Ctrl:               memctrl.DefaultConfig(),
		Scheme:             scheme,
		Workload:           w,
		Duration:           40 * timing.Millisecond,
		Warmup:             10 * timing.Millisecond,
		TimeScale:          100,
		Seed:               1,
		HitStallFactor:     0.35,
		CheckRetention:     true,
		Reliability:        reliability.DefaultConfig(),
		EquivalentDuration: 5 * timing.Second,
	}
}

// Validate checks the run configuration.
func (c Config) Validate() error {
	if err := c.Device.Validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.Validate(); err != nil {
		return err
	}
	if err := c.Ctrl.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Workload.NumStreams() == 0 {
		return fmt.Errorf("sim: workload has no cores")
	}
	if n := c.Workload.NumStreams(); n != c.Hierarchy.Cores {
		return fmt.Errorf("sim: workload has %d streams, hierarchy %d cores",
			n, c.Hierarchy.Cores)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("sim: non-positive duration")
	}
	if c.Warmup < 0 {
		return fmt.Errorf("sim: negative warmup")
	}
	if c.TimeScale < 1 {
		return fmt.Errorf("sim: TimeScale %v must be >= 1", c.TimeScale)
	}
	if c.HitStallFactor < 0 || c.HitStallFactor > 1 {
		return fmt.Errorf("sim: HitStallFactor %v out of [0,1]", c.HitStallFactor)
	}
	if c.Shards < -1 {
		return fmt.Errorf("sim: Shards %d (want -1 for auto, 0 for serial, or a positive count)", c.Shards)
	}
	if n := c.effectiveShards(); n > 0 && c.Device.Channels%n != 0 {
		return fmt.Errorf("sim: %d shards must divide %d channels", n, c.Device.Channels)
	}
	if c.Sampling != nil {
		if err := c.Sampling.Validate(c.Duration); err != nil {
			return err
		}
		if c.Scheme.Kind == SchemeCustom {
			return fmt.Errorf("sim: custom schemes cannot be sampled (snapshots cannot carry policy state)")
		}
	}
	if err := c.Reliability.Validate(); err != nil {
		return err
	}
	if c.Hybrid != nil {
		if err := c.Hybrid.Validate(c.Device); err != nil {
			return err
		}
	}
	switch c.Scheme.Kind {
	case SchemeStatic:
		if !c.Scheme.StaticMode.Valid() {
			return fmt.Errorf("sim: invalid static mode %d", int(c.Scheme.StaticMode))
		}
	case SchemeRRM:
		if err := c.Scheme.RRM.Validate(); err != nil {
			return err
		}
	case SchemeCustom:
		if c.Scheme.Custom == nil {
			return fmt.Errorf("sim: custom scheme without policy")
		}
	default:
		return fmt.Errorf("sim: unknown scheme kind %d", int(c.Scheme.Kind))
	}
	return nil
}

// effectiveShards resolves the Shards knob: -1 (auto) means one shard
// per memory channel, 0 stays serial, and a count above the channel
// count caps there (a channel is the finest partition unit).
func (c Config) effectiveShards() int {
	n := c.Shards
	if n == -1 || n > c.Device.Channels {
		n = c.Device.Channels
	}
	return n
}

// shardLookahead derives the conservative epoch window from the minimum
// controller→core latency already encoded in the timing model: the
// fastest channel-domain action a core can observe is a forwarded read
// completing after TCAS + BusXfer. Larger lookaheads only ever extend a
// batch speculatively — a cross-shard event landing inside the open
// window aborts the batch to the barrier — so correctness holds for any
// positive value; this one bounds how far a shard can run ahead between
// barriers.
func (c Config) shardLookahead() timing.Time {
	la := c.Ctrl.TCAS + c.Ctrl.BusXfer
	if la < 1 {
		la = 1
	}
	return la
}

// scaledRRM returns the RRM config with the retention clock accelerated
// and the simulated refresh stream sampled 1-in-TimeScale, which keeps
// its bandwidth and counts at the real density (see
// core.RRMConfig.RefreshSampling).
func (c Config) scaledRRM() core.RRMConfig {
	r := c.Scheme.RRM
	r.FastRefreshInterval = timing.Time(float64(r.FastRefreshInterval) / c.TimeScale)
	r.DecayInterval = timing.Time(float64(r.DecayInterval) / c.TimeScale)
	r.RefreshSampling = uint64(c.TimeScale)
	return r
}

// scaledRetention returns mode's retention under the accelerated clock.
func (c Config) scaledRetention(mode pcm.WriteMode) timing.Time {
	return timing.Time(float64(pcm.Retention(mode)) / c.TimeScale)
}

// scaledPatrolInterval returns the patrol-scrub period under the
// accelerated retention clock (patrol is clock-driven, like every
// refresh mechanism).
func (c Config) scaledPatrolInterval() timing.Time {
	t := timing.Time(float64(c.Reliability.PatrolInterval) / c.TimeScale)
	if t < 1 {
		t = 1
	}
	return t
}

// reliabilitySeed derives the run's dedicated reliability RNG stream
// from the configuration identity (FNV-1a over the simulation-relevant
// fields), so the fault injector never shares a stream with the trace
// generators' core seeds and two different configs never replay each
// other's error patterns.
func (c Config) reliabilitySeed() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
	}
	mix(fmt.Sprintf("reliability|%s|%s|%d|%d|%d|%g|%d|%g|%v",
		c.Scheme.Name(), c.Workload.Name, c.Seed,
		int64(c.Duration), int64(c.Warmup), c.TimeScale,
		c.Reliability.ECCBits, c.Reliability.ProgBitErrorProb,
		c.Reliability.Patrol))
	return h
}
