package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"rrmpcm/internal/pcm"
)

func TestModeWritesMarshalStable(t *testing.T) {
	w := ModeWrites{pcm.Mode7SETs: 10, pcm.Mode3SETs: 3, pcm.Mode5SETs: 5}
	blob, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"3-SETs-Write":3,"5-SETs-Write":5,"7-SETs-Write":10}`
	if string(blob) != want {
		t.Errorf("marshal = %s, want %s (name keys in mode order)", blob, want)
	}
	// Deterministic across repeated marshals (map order must not leak).
	for i := 0; i < 10; i++ {
		again, _ := json.Marshal(w)
		if string(again) != want {
			t.Fatalf("marshal unstable: %s", again)
		}
	}
}

func TestModeWritesRoundTrip(t *testing.T) {
	in := ModeWrites{}
	for _, m := range pcm.Modes() {
		in[m] = uint64(m) * 100
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ModeWrites
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost entries: %v -> %v", in, out)
	}
	for m, n := range in {
		if out[m] != n {
			t.Errorf("mode %v: %d -> %d", m, n, out[m])
		}
	}
}

func TestModeWritesNil(t *testing.T) {
	var w ModeWrites
	blob, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "null" {
		t.Errorf("nil map marshals as %s", blob)
	}
	var out ModeWrites
	if err := json.Unmarshal([]byte("null"), &out); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Errorf("null unmarshals as %v, want nil", out)
	}
}

func TestModeWritesAcceptsLegacyKeys(t *testing.T) {
	// Format-1 cache files used encoding/json's integer map keys.
	var out ModeWrites
	if err := json.Unmarshal([]byte(`{"3":1,"7":2}`), &out); err != nil {
		t.Fatal(err)
	}
	if out[pcm.Mode3SETs] != 1 || out[pcm.Mode7SETs] != 2 {
		t.Errorf("legacy keys decoded as %v", out)
	}
}

func TestModeWritesRejectsUnknownKey(t *testing.T) {
	var out ModeWrites
	err := json.Unmarshal([]byte(`{"8-SETs-Write":1}`), &out)
	if err == nil || !strings.Contains(err.Error(), "unknown write mode") {
		t.Errorf("unknown mode error = %v", err)
	}
}

func TestParseWriteMode(t *testing.T) {
	good := map[string]pcm.WriteMode{
		"7-SETs-Write": pcm.Mode7SETs,
		"7-SETs":       pcm.Mode7SETs,
		"static-7":     pcm.Mode7SETs,
		"7":            pcm.Mode7SETs,
		"3-SETs-Write": pcm.Mode3SETs,
		"static-4":     pcm.Mode4SETs,
		"5":            pcm.Mode5SETs,
	}
	for s, want := range good {
		got, err := ParseWriteMode(s)
		if err != nil || got != want {
			t.Errorf("ParseWriteMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"", "2", "8", "rrm", "SETs-7", "7-RESETs-Write"} {
		if m, err := ParseWriteMode(s); err == nil {
			t.Errorf("ParseWriteMode(%q) = %v, want error", s, m)
		}
	}
}

func TestMetricsRoundTripKeepsWritesByMode(t *testing.T) {
	// The whole Metrics struct — the payload the run cache and the HTTP
	// service persist — must survive a JSON round trip bit-exactly on
	// the mode counters.
	m := Metrics{
		Scheme:       "RRM",
		Workload:     "GemsFDTD",
		IPC:          1.25,
		WritesByMode: ModeWrites{pcm.Mode3SETs: 7, pcm.Mode7SETs: 41},
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"3-SETs-Write":7`) {
		t.Errorf("metrics JSON lacks name-keyed mode counters: %s", blob)
	}
	var back Metrics
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.WritesByMode[pcm.Mode3SETs] != 7 || back.WritesByMode[pcm.Mode7SETs] != 41 {
		t.Errorf("WritesByMode round trip: %v", back.WritesByMode)
	}
}
