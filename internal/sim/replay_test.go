package sim

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
	"rrmpcm/internal/tracefile"
)

// exportWorkload records opsPerCore ops of every stream of cfg's
// workload into dir, using the simulator's own seeding and partition
// rules, and returns the replay variant of the workload (same Name, so
// the reliability seed — which mixes the name — matches too).
func exportWorkload(t *testing.T, cfg Config, dir string, opsPerCore uint64) trace.Workload {
	t.Helper()
	w := cfg.Workload
	n := w.NumStreams()
	rw := w
	rw.Cores = nil
	rw.Dynamics = nil
	for i := 0; i < n; i++ {
		base, span := trace.CorePartition(cfg.Device.MemBytes, n, i)
		gen, err := trace.NewStream(w, i, base, span, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		meta := tracefile.Meta{
			Name:    w.Cores[i].Name,
			BaseCPI: gen.BaseCPI(),
			MaxMLP:  gen.MaxMLP(),
			Base:    base,
			Span:    span,
			Seed:    trace.CoreSeed(cfg.Seed, i),
		}
		blob, err := tracefile.Record(gen, meta, opsPerCore)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, w.Name+".c"+string(rune('0'+i))+".rrmt")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := tracefile.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		rw.Replay = append(rw.Replay, trace.TraceRef{Path: path, Sum: f.Sum()})
	}
	return rw
}

// TestReplayRoundTripMetrics is the subsystem's acceptance proof: a
// trace exported from a synthetic workload and replayed through the
// simulator yields byte-identical Metrics to the generator run.
func TestReplayRoundTripMetrics(t *testing.T) {
	cfg := quickConfig(t, RRMScheme(), "hmmer")
	cfg.Duration = 2 * timing.Millisecond
	cfg.Warmup = 500 * timing.Microsecond

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}

	const opsPerCore = 1_000_000 // comfortably more than the window consumes
	rcfg := cfg
	rcfg.Workload = exportWorkload(t, cfg, t.TempDir(), opsPerCore)
	s2, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range s2.gens {
		r := g.(*tracefile.Replay)
		if r.Wraps() != 0 {
			t.Fatalf("stream %d wrapped (consumed > %d ops); byte-identity check needs a longer recording", i, opsPerCore)
		}
	}

	j1, err := json.Marshal(m1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(m2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("replay metrics differ from generator metrics\ngen:    %s\nreplay: %s", j1, j2)
	}
	if m1.Instructions == 0 || len(m1.WritesByMode) == 0 {
		t.Errorf("degenerate run: %d insts, no demand writes", m1.Instructions)
	}
}

// TestReplayChecksumMismatch: a config whose TraceRef.Sum does not match
// the file's content must be rejected at System construction.
func TestReplayChecksumMismatch(t *testing.T) {
	cfg := quickConfig(t, RRMScheme(), "hmmer")
	rw := exportWorkload(t, cfg, t.TempDir(), 1000)
	rw.Replay[0].Sum ^= 1
	cfg.Workload = rw
	if _, err := New(cfg); err == nil {
		t.Error("checksum mismatch accepted")
	}
}

// TestTenantAttribution: per-tenant counters must partition the global
// ones — nothing lost, nothing double-counted.
func TestTenantAttribution(t *testing.T) {
	cfg := quickConfig(t, RRMScheme(), "hmmer")
	cfg.Workload.Tenants = []string{"acme", "zenith", "acme", "zenith"}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tenants) != 2 {
		t.Fatalf("have %d tenants, want 2", len(m.Tenants))
	}
	var insts, writes, cores uint64
	for _, tm := range m.Tenants {
		if tm.Name != "acme" && tm.Name != "zenith" {
			t.Errorf("unexpected tenant %q", tm.Name)
		}
		if tm.Cores != 2 {
			t.Errorf("tenant %s has %d cores, want 2", tm.Name, tm.Cores)
		}
		if tm.Instructions == 0 || tm.DemandWrites == 0 {
			t.Errorf("tenant %s idle: %+v", tm.Name, tm)
		}
		insts += tm.Instructions
		writes += tm.DemandWrites
		cores += uint64(tm.Cores)
	}
	if insts != m.Instructions {
		t.Errorf("tenant instructions sum %d != total %d", insts, m.Instructions)
	}
	// The global WritesByMode split also counts refresh writes; the
	// wear tracker's demand-kind counter is the matching total.
	total := s.wear.ByKind(pcm.WearDemandWrite) - s.base.wearKind[0]
	if writes != total {
		t.Errorf("tenant demand writes sum %d != total %d", writes, total)
	}
	if cores != 4 {
		t.Errorf("tenant cores sum %d != 4", cores)
	}

	// Single-tenant runs carry no tenant section at all.
	cfg2 := quickConfig(t, RRMScheme(), "hmmer")
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Tenants != nil {
		t.Errorf("untenanted run produced tenant metrics: %+v", m2.Tenants)
	}
}

// TestTenantSnapshotRestore: a tenanted system survives the
// snapshot/fork warm-start path with its attribution intact.
func TestTenantSnapshotRestore(t *testing.T) {
	cfg := quickConfig(t, RRMScheme(), "hmmer")
	cfg.Workload.Tenants = []string{"a", "b", "a", "b"}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fork, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.Restore(blob); err != nil {
		t.Fatal(err)
	}
	m1, err := s.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := fork.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(m1)
	j2, _ := json.Marshal(m2)
	if string(j1) != string(j2) {
		t.Errorf("forked tenant run diverged\nlive: %s\nfork: %s", j1, j2)
	}
}
