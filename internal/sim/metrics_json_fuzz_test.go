package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzMetricsJSONRoundTrip fuzzes the ModeWrites snapshot codec: any blob
// the decoder accepts must re-encode canonically (mode-name keys, mode
// order) and survive a second round trip unchanged. This is the format
// the run cache and the HTTP service persist, so decode→encode must be a
// fixed point for both the format-2 spelling and the legacy integer keys.
func FuzzMetricsJSONRoundTrip(f *testing.F) {
	f.Add([]byte(`{"3-SETs-Write":1,"7-SETs-Write":1200}`)) // format 2
	f.Add([]byte(`{"3":1,"7":2}`))                          // legacy integer keys
	f.Add([]byte(`{"static-5":9,"4-SETs":4}`))              // accepted aliases
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"8":1}`))
	f.Add([]byte(`{"3-SETs-Write":-1}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, blob []byte) {
		var w ModeWrites
		if err := json.Unmarshal(blob, &w); err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		enc, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("accepted %q but re-encode failed: %v", blob, err)
		}
		var w2 ModeWrites
		if err := json.Unmarshal(enc, &w2); err != nil {
			t.Fatalf("own encoding %q does not decode: %v", enc, err)
		}
		if len(w2) != len(w) {
			t.Fatalf("round trip changed size: %v -> %v", w, w2)
		}
		for m, n := range w {
			if w2[m] != n {
				t.Fatalf("round trip changed %v: %d -> %d", m, n, w2[m])
			}
		}
		enc2, err := json.Marshal(w2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not canonical: %q then %q", enc, enc2)
		}
	})
}
