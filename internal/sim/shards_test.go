package sim

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"testing"

	"rrmpcm/internal/dram"
	"rrmpcm/internal/trace"
)

// runShardProbe executes one golden-config run at the given shard count
// and returns the full metrics JSON plus the sha256 of the warm-state
// snapshot taken at the warmup boundary — the two artifacts the sharded
// engine must reproduce byte-for-byte at every shard count.
func runShardProbe(t *testing.T, cfg Config, shards int) (metricsJSON, snapSum []byte) {
	t.Helper()
	cfg.Shards = shards
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	if err := sys.Warmup(ctx); err != nil {
		t.Fatal(err)
	}
	var sum []byte
	if cfg.Scheme.Kind != SchemeCustom {
		blob, err := sys.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.Sum256(blob)
		sum = h[:]
	}
	m, err := sys.Measure(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mj, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return mj, sum
}

// shardCounts is the property-test domain: 0 is the serial reference
// engine; 1/2/4/8 exercise the sharded engine at every channel grouping
// (8 caps at the 4-channel device, covering the over-provisioned case).
var shardCounts = []int{0, 1, 2, 4, 8}

// TestShardsMetricsIdentical is the tentpole's core property: for every
// golden config, metrics JSON and the canonical warm-snapshot checksum
// are byte-identical at every shard count — including the serial engine.
// Run it under -race: with GOMAXPROCS > 1 the shard batches execute on
// worker goroutines, and the barrier hand-off is the synchronization
// the detector checks.
func TestShardsMetricsIdentical(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, err := trace.WorkloadByName(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			cfg := goldenConfig(tc.scheme, w)
			wantM, wantS := runShardProbe(t, cfg, shardCounts[0])
			for _, n := range shardCounts[1:] {
				gotM, gotS := runShardProbe(t, cfg, n)
				if !bytes.Equal(gotM, wantM) {
					t.Errorf("shards=%d metrics diverged from serial:\n%s",
						n, goldenDiff(wantM, gotM))
				}
				if !bytes.Equal(gotS, wantS) {
					t.Errorf("shards=%d warm snapshot checksum diverged from serial", n)
				}
			}
		})
	}
}

// TestShardsHybridIdentical extends the property to the hybrid
// DRAM+PCM tier: migration copy traffic crosses the core/channel shard
// seam in both directions.
func TestShardsHybridIdentical(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig(RRMScheme(), w)
	hc := dram.DefaultHybridConfig()
	cfg.Hybrid = &hc
	wantM, wantS := runShardProbe(t, cfg, 0)
	for _, n := range shardCounts[1:] {
		gotM, gotS := runShardProbe(t, cfg, n)
		if !bytes.Equal(gotM, wantM) {
			t.Errorf("hybrid shards=%d metrics diverged from serial:\n%s",
				n, goldenDiff(wantM, gotM))
		}
		if !bytes.Equal(gotS, wantS) {
			t.Errorf("hybrid shards=%d warm snapshot checksum diverged from serial", n)
		}
	}
}

// The sampled-run half of the property lives in
// internal/sampling/shards_test.go (the executor imports sim, so it
// cannot be exercised from here without a cycle).

// TestShardsForkEquality checks warm-start fork equality across the
// engine seam: a warm snapshot taken by the serial engine, restored into
// a sharded system (and vice versa), measures to the exact metrics of
// the straight-through run — the property the engine's warm-start cache
// relies on to share snapshots across shard counts.
func TestShardsForkEquality(t *testing.T) {
	w, err := trace.WorkloadByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig(RRMScheme(), w)
	ctx := context.Background()

	warmBlob := func(shards int) []byte {
		c := cfg
		c.Shards = shards
		sys, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		if err := sys.Warmup(ctx); err != nil {
			t.Fatal(err)
		}
		blob, err := sys.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	measureFrom := func(blob []byte, shards int) []byte {
		c := cfg
		c.Shards = shards
		sys, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Restore(blob); err != nil {
			t.Fatal(err)
		}
		m, err := sys.Measure(ctx)
		if err != nil {
			t.Fatal(err)
		}
		mj, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return mj
	}

	straight, _ := runShardProbe(t, cfg, 0)
	serialBlob, shardedBlob := warmBlob(0), warmBlob(4)
	if !bytes.Equal(serialBlob, shardedBlob) {
		t.Errorf("warm snapshot bytes differ between serial and sharded engines")
	}
	for _, tc := range []struct {
		name   string
		blob   []byte
		shards int
	}{
		{"serial->sharded", serialBlob, 4},
		{"sharded->serial", shardedBlob, 0},
		{"sharded->sharded2", shardedBlob, 2},
	} {
		if got := measureFrom(tc.blob, tc.shards); !bytes.Equal(got, straight) {
			t.Errorf("%s fork metrics diverged from straight-through run:\n%s",
				tc.name, goldenDiff(straight, got))
		}
	}
}
