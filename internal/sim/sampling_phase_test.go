package sim

import (
	"context"
	"testing"

	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// TestSamplingPhaseErrors locks the System phase machine against misuse
// of the sampling entry points: each op is legal in exactly one phase
// (warmed) and must fail cleanly — not corrupt state or panic — in the
// others, including argument misuse within the legal phase.
func TestSamplingPhaseErrors(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig(RRMScheme(), w)
	cfg.Duration = 300 * timing.Microsecond
	cfg.Warmup = 100 * timing.Microsecond
	ctx := context.Background()

	span := 10 * timing.Microsecond
	ops := []struct {
		name string
		call func(s *System) error
	}{
		{"FastForward", func(s *System) error { return s.FastForward(ctx, span) }},
		{"SkipForward", func(s *System) error { return s.SkipForward(ctx, span) }},
		{"Advance", func(s *System) error { return s.Advance(ctx, span) }},
		{"MeasureWindow", func(s *System) error {
			_, err := s.MeasureWindow(ctx, span, span)
			return err
		}},
	}

	// Phase: new (before Warmup) — every sampling op must refuse.
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := op.call(fresh); err == nil {
			t.Errorf("%s on a new system succeeded", op.name)
		}
	}

	// Phase: warmed — bad arguments must refuse, zero spans are no-ops,
	// and the no-ops must not consume the system.
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Warmup(ctx); err != nil {
		t.Fatal(err)
	}
	argCases := []struct {
		name    string
		call    func() error
		wantErr bool
	}{
		{"FastForward negative", func() error { return sys.FastForward(ctx, -span) }, true},
		{"SkipForward negative", func() error { return sys.SkipForward(ctx, -span) }, true},
		{"Advance negative", func() error { return sys.Advance(ctx, -span) }, true},
		{"MeasureWindow negative preroll", func() error {
			_, err := sys.MeasureWindow(ctx, -span, span)
			return err
		}, true},
		{"MeasureWindow zero window", func() error {
			_, err := sys.MeasureWindow(ctx, span, 0)
			return err
		}, true},
		{"FastForward zero", func() error { return sys.FastForward(ctx, 0) }, false},
		{"SkipForward zero", func() error { return sys.SkipForward(ctx, 0) }, false},
		{"Advance zero", func() error { return sys.Advance(ctx, 0) }, false},
	}
	for _, tc := range argCases {
		if err := tc.call(); (err != nil) != tc.wantErr {
			t.Errorf("%s: err=%v, wantErr=%v", tc.name, err, tc.wantErr)
		}
	}

	// The argument misuse above must have left the system warmed and
	// usable: a real fast-forward plus window measurement still works.
	if err := sys.FastForward(ctx, span); err != nil {
		t.Fatalf("FastForward after argument misuse: %v", err)
	}
	if _, err := sys.MeasureWindow(ctx, span, span); err != nil {
		t.Fatalf("MeasureWindow after argument misuse: %v", err)
	}

	// Phase: measured — MeasureWindow consumed the system; every
	// sampling op must now refuse.
	for _, op := range ops {
		if err := op.call(sys); err == nil {
			t.Errorf("%s on a measured system succeeded", op.name)
		}
	}

	// Restore is only legal into a new system, not one MeasureWindow has
	// consumed — and not a warmed one (covered by TestSnapshotLifecycle).
	donor, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.Warmup(ctx); err != nil {
		t.Fatal(err)
	}
	blob, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Restore(blob); err == nil {
		t.Error("Restore into a measured system succeeded")
	}
}
