package sim

import (
	"rrmpcm/internal/cache"
	"rrmpcm/internal/cpu"
	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// functionalMLP is the effective miss overlap assumed by functional
// fast-forward when charging LLC misses as a flat synchronous stall:
// Table IV cores overlap up to 8 misses (MSHRs), and the measured
// effective per-miss cost of the detailed model on the shipped
// workloads sits near unloaded-latency/4 (row-buffer hits offset the
// un-overlapped tail). Calibrated so the functional machine's
// instruction rate per simulated second tracks the detailed one's —
// what keeps fast-forwarded architectural state on the detailed
// trajectory between sampling windows.
const functionalMLP = 4

// backend glues the cores to the hierarchy, write policy and memory
// controller. It is the cpu.Backend implementation, the controller's
// accounting Recorder, and the RRM's RefreshIssuer.
//
// Backpressure: when a dirty LLC victim cannot enter its channel's write
// queue it is parked in a per-channel overflow list and every core that
// produced overflow is throttled until all overflow drains — this models
// the LLC blocking on eviction, which is how slow writes reach around and
// strangle the cores in the paper's Static-7 results.
type backend struct {
	sys *System

	// Per-channel overflow/pending lists, drained on queue space.
	overflowWrites  [][]*memctrl.Request
	overflowReads   [][]*memctrl.Request
	pendingRefresh  [][]*memctrl.Request
	spaceArmed      [3][]bool // [kind][channel]
	totalOverflowWB int

	throttled []bool // per core
	stopped   bool   // end of run: drop further refreshes

	// flatReadLat is the effective LLC-miss cost charged synchronously
	// in functional fast-forward mode, where the controller is
	// bypassed: the unloaded PCM read latency (activate + column access
	// + bus transfer) divided by the effective memory-level parallelism
	// the interval core model would overlap. Without the MLP division
	// the functional machine executes several times fewer instructions
	// per simulated second than the detailed one, so its architectural
	// state (cache dirtiness, RRM hot set) would lag the detailed
	// trajectory it must approximate.
	flatReadLat timing.Time
	// flatBase is the configured (unscaled) flat latency; the sampler's
	// feedback loop clamps its adjustments relative to it.
	flatBase timing.Time
	// flatDramLat is the functional-mode cost of a hybrid staging-tier
	// hit (unloaded DRAM read latency over the same MLP divisor). Zero
	// for PCM-only runs; the sampler's feedback loop leaves it fixed —
	// DRAM hits are latency-stable.
	flatDramLat timing.Time

	// Peak backlog of RRM refreshes, for the deadline discussion.
	maxRefreshBacklog int

	// subFree recycles delayed-submission envelopes so the per-access
	// Schedule closures disappear from the steady state. liveSubs tracks
	// the envelopes whose delivery event is scheduled, so state snapshots
	// can enumerate them (swap-removal keeps it O(1)).
	subFree  []*submission
	liveSubs []*submission
}

// submission is one request waiting for its core-local delivery time.
// The callback is bound once per pooled object; at/seq/idx record the
// scheduled delivery event for snapshots.
type submission struct {
	b      *backend
	req    *memctrl.Request
	coreID int
	fn     func(timing.Time)
	at     timing.Time
	seq    int64
	idx    int
}

func newBackend(sys *System) *backend {
	ch := sys.cfg.Device.Channels
	b := &backend{
		sys:            sys,
		overflowWrites: make([][]*memctrl.Request, ch),
		overflowReads:  make([][]*memctrl.Request, ch),
		pendingRefresh: make([][]*memctrl.Request, ch),
		throttled:      make([]bool, len(sys.cfg.Workload.Cores)),
		flatReadLat: (sys.cfg.Ctrl.TRCD + sys.cfg.Ctrl.TCAS + sys.cfg.Ctrl.BusXfer) /
			timing.Time(functionalMLP),
	}
	b.flatBase = b.flatReadLat
	if hc := sys.cfg.Hybrid; hc != nil {
		b.flatDramLat = (hc.DRAM.TRCD + hc.DRAM.TCAS + hc.DRAM.BusXfer) /
			timing.Time(functionalMLP)
	}
	for k := range b.spaceArmed {
		b.spaceArmed[k] = make([]bool, ch)
	}
	return b
}

// Access implements cpu.Backend.
func (b *backend) Access(coreID int, addr uint64, store bool, instNum uint64, now timing.Time, done func(timing.Time)) cpu.AccessReply {
	kind := cache.Load
	if store {
		kind = cache.Store
	}
	var res cache.Result
	b.sys.hier.AccessInto(coreID, addr, kind, false, &res)

	// LLC write registrations feed the policy (RRM's learning input).
	for i := 0; i < res.NumRegistrations; i++ {
		reg := res.Registrations[i]
		b.sys.policy.RegisterLLCWrite(reg.Addr, reg.WasDirty, now)
	}

	var reply cpu.AccessReply
	switch res.Hit {
	case cache.InL1:
		// Fully pipelined.
	case cache.InL2, cache.InLLC:
		reply.Stall = timing.Time(float64(res.Latency) * b.sys.cfg.HitStallFactor)
	case cache.InMemory:
		if b.sys.functional {
			// Functional fast-forward: charge the unloaded read latency
			// synchronously and account the block read now. The
			// controller (and the reliability read-path inspection it
			// hosts) is bypassed. Hybrid staging-tier hits advance the
			// migration state and cost the DRAM flat latency instead.
			if m := b.sys.migr; m != nil && m.FunctionalRead(res.MemReadAddr, now) {
				reply.Stall = b.flatDramLat
				break
			}
			reply.Stall = b.flatReadLat
			b.RecordRead(res.MemReadAddr)
			break
		}
		reply.Pending = true
		req := b.sys.dev.AcquireRequest()
		req.Kind, req.Addr, req.OnDone = memctrl.ReadReq, res.MemReadAddr, done
		// Owner identity lets a state snapshot rebuild the callback
		// (cpu.Core.MissCallback) after a restore.
		req.OwnerCore, req.OwnerStore, req.OwnerInst = coreID, store, instNum
		b.submitAt(now, req, coreID)
	}

	// Dirty LLC victims become memory writes with a policy-chosen mode.
	for i := 0; i < res.NumMemWrites; i++ {
		wb := res.MemWrites[i]
		mode := b.sys.policy.DecideWriteMode(wb, now)
		if b.sys.functional {
			// Instant completion: wear/energy/retention/reliability
			// state advance, queueing is skipped. Writes the hybrid
			// staging tier absorbs never touch the PCM state.
			if m := b.sys.migr; m != nil && m.FunctionalWrite(wb, now) {
				continue
			}
			b.RecordWrite(wb, mode, pcm.WearDemandWrite)
			continue
		}
		req := b.sys.dev.AcquireRequest()
		req.Kind, req.Addr, req.Mode, req.Wear = memctrl.WriteReq, wb, mode, pcm.WearDemandWrite
		b.submitAt(now, req, coreID)
	}
	if b.totalOverflowWB > 0 {
		reply.Throttle = true
		b.throttled[coreID] = true
	}
	return reply
}

// submitAt delivers a request to the controller at the core-local time
// now (which is at or after the event clock).
func (b *backend) submitAt(now timing.Time, req *memctrl.Request, coreID int) {
	var s *submission
	if n := len(b.subFree); n > 0 {
		s = b.subFree[n-1]
		b.subFree[n-1] = nil
		b.subFree = b.subFree[:n-1]
	} else {
		s = &submission{b: b}
		s.fn = func(t timing.Time) {
			s.b.untrackSub(s)
			req, coreID := s.req, s.coreID
			s.req = nil
			s.b.subFree = append(s.b.subFree, s)
			s.b.submit(req, coreID, t)
		}
	}
	s.req, s.coreID = req, coreID
	s.at = now
	s.seq = b.sys.eq.Schedule(now, s.fn).Seq()
	s.idx = len(b.liveSubs)
	b.liveSubs = append(b.liveSubs, s)
}

// untrackSub removes a firing submission from the live list.
func (b *backend) untrackSub(s *submission) {
	i := s.idx
	last := len(b.liveSubs) - 1
	b.liveSubs[i] = b.liveSubs[last]
	b.liveSubs[i].idx = i
	b.liveSubs[last] = nil
	b.liveSubs = b.liveSubs[:last]
}

// submit enqueues or parks a request.
func (b *backend) submit(req *memctrl.Request, coreID int, now timing.Time) {
	if b.sys.dev.TryEnqueue(req) {
		return
	}
	ch := b.sys.dev.ChannelOf(req.Addr)
	switch req.Kind {
	case memctrl.WriteReq:
		b.overflowWrites[ch] = append(b.overflowWrites[ch], req)
		b.totalOverflowWB++
		if coreID >= 0 {
			b.throttled[coreID] = true
			b.sys.cores[coreID].Throttle()
		}
	case memctrl.ReadReq:
		b.overflowReads[ch] = append(b.overflowReads[ch], req)
	case memctrl.RefreshReq:
		b.pendingRefresh[ch] = append(b.pendingRefresh[ch], req)
		if n := len(b.pendingRefresh[ch]); n > b.maxRefreshBacklog {
			b.maxRefreshBacklog = n
		}
	}
	b.armSpace(req.Kind, ch)
}

// armSpace subscribes (once) to queue-space notifications.
func (b *backend) armSpace(kind memctrl.RequestKind, ch int) {
	if b.spaceArmed[kind][ch] {
		return
	}
	b.spaceArmed[kind][ch] = true
	b.sys.dev.OnSpace(kind, ch, func(now timing.Time) {
		b.spaceArmed[kind][ch] = false
		b.drain(kind, ch, now)
	})
}

// drain moves parked requests of one kind into the freed queue.
func (b *backend) drain(kind memctrl.RequestKind, ch int, now timing.Time) {
	var list *[]*memctrl.Request
	switch kind {
	case memctrl.WriteReq:
		list = &b.overflowWrites[ch]
	case memctrl.ReadReq:
		list = &b.overflowReads[ch]
	default:
		list = &b.pendingRefresh[ch]
	}
	for len(*list) > 0 {
		req := (*list)[0]
		if !b.sys.dev.TryEnqueue(req) {
			b.armSpace(kind, ch)
			return
		}
		copy(*list, (*list)[1:])
		(*list)[len(*list)-1] = nil
		*list = (*list)[:len(*list)-1]
		if kind == memctrl.WriteReq {
			b.totalOverflowWB--
		}
	}
	if kind == memctrl.WriteReq && b.totalOverflowWB == 0 {
		b.resumeAll(now)
	}
}

// resumeAll releases every throttled core.
func (b *backend) resumeAll(now timing.Time) {
	for id, th := range b.throttled {
		if th {
			b.throttled[id] = false
			b.sys.cores[id].Resume(now)
		}
	}
}

// IssueRefresh implements core.RefreshIssuer for the RRM.
func (b *backend) IssueRefresh(addr uint64, mode pcm.WriteMode, kind pcm.WearKind) {
	if b.stopped {
		return
	}
	if b.sys.functional {
		// Functional fast-forward: the refresh completes instantly (the
		// retention state machine is what matters, not queueing).
		b.RecordWrite(addr, mode, kind)
		return
	}
	req := b.sys.dev.AcquireRequest()
	req.Kind, req.Addr, req.Mode, req.Wear = memctrl.RefreshReq, addr, mode, kind
	b.submit(req, -1, b.sys.eq.Now())
}

// RecordWrite implements memctrl.Recorder.
func (b *backend) RecordWrite(addr uint64, mode pcm.WriteMode, kind pcm.WearKind) {
	b.sys.wear.RecordBlockWrite(addr, mode, kind)
	b.sys.energy.AddBlockWrite(mode, kind)
	if b.sys.tenants != nil && kind == pcm.WearDemandWrite {
		b.sys.tenants.noteDemandWrite(addr, mode)
	}
	if b.sys.checker != nil {
		b.sys.checker.onWrite(addr, mode, b.sys.eq.Now())
	}
	if b.sys.rel != nil {
		// Every completed rewrite — demand write, RRM refresh, slow or
		// patrol refresh — scrubs the line's accumulated error state.
		b.sys.rel.OnWrite(addr, mode, kind, b.sys.eq.Now())
	}
}

// RecordRead implements memctrl.Recorder.
func (b *backend) RecordRead(addr uint64) {
	b.sys.energy.AddBlockRead()
	if b.sys.checker != nil {
		b.sys.checker.onRead(addr, b.sys.eq.Now())
	}
}
