package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// reliabilityGoldenConfig is the pinned quick configuration of the
// reliability goldens. The retention clock runs at 6000x so the 3 ms
// window spans an 18 s real horizon — deep enough past the 2.01 s Mode-3
// deadline that Static-3 lines accumulate drift errors. Frozen like
// goldenConfig: changing it invalidates the *-rel golden files.
func reliabilityGoldenConfig(scheme Scheme, w trace.Workload) Config {
	cfg := DefaultConfig(scheme, w)
	cfg.Duration = 2500 * timing.Microsecond
	cfg.Warmup = 500 * timing.Microsecond
	cfg.TimeScale = 6000
	cfg.Seed = 1
	cfg.Reliability.Enabled = true
	return cfg
}

// TestGoldenReliabilityMetrics pins full metrics JSON — including the
// reliability block — for fixed-seed runs with the fault model enabled,
// and cross-checks the headline ordering: RRM ends the run with strictly
// fewer uncorrectable errors than Static-3. Regenerate deliberately with
//
//	go test ./internal/sim -run TestGoldenReliabilityMetrics -update
func TestGoldenReliabilityMetrics(t *testing.T) {
	cases := []struct {
		name     string
		scheme   Scheme
		workload string
	}{
		{"static-3-GemsFDTD-rel", StaticScheme(pcm.Mode3SETs), "GemsFDTD"},
		{"static-7-GemsFDTD-rel", StaticScheme(pcm.Mode7SETs), "GemsFDTD"},
		{"rrm-GemsFDTD-rel", RRMScheme(), "GemsFDTD"},
	}
	uncorr := make(map[string]uint64, len(cases))
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, err := trace.WorkloadByName(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := New(reliabilityGoldenConfig(tc.scheme, w))
			if err != nil {
				t.Fatal(err)
			}
			m, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			if m.Reliability == nil {
				t.Fatal("reliability enabled but Metrics.Reliability is nil")
			}
			uncorr[tc.name] = m.Reliability.Uncorrectable()
			got, err := json.MarshalIndent(m, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("metrics diverged from %s\n%s", path, goldenDiff(want, got))
			}
		})
	}
	if uncorr["rrm-GemsFDTD-rel"] >= uncorr["static-3-GemsFDTD-rel"] {
		t.Errorf("RRM uncorrectable errors (%d) not strictly below Static-3 (%d)",
			uncorr["rrm-GemsFDTD-rel"], uncorr["static-3-GemsFDTD-rel"])
	}
}

// TestReliabilityComparative is the acceptance run of the reliability
// subsystem: a fixed-seed four-workload sweep across every scheme in
// which RRM's uncorrectable-error count must be no worse than every
// Static-N and strictly better than Static-3 — the paper's motivation
// (performance without retention loss) restated as an error-rate claim.
func TestReliabilityComparative(t *testing.T) {
	if testing.Short() {
		t.Skip("24 simulations; skipped in -short mode")
	}
	schemes := []Scheme{
		RRMScheme(),
		StaticScheme(pcm.Mode3SETs),
		StaticScheme(pcm.Mode4SETs),
		StaticScheme(pcm.Mode5SETs),
		StaticScheme(pcm.Mode6SETs),
		StaticScheme(pcm.Mode7SETs),
	}
	for _, wname := range []string{"GemsFDTD", "lbm", "mcf", "MIX_2"} {
		wname := wname
		t.Run(wname, func(t *testing.T) {
			t.Parallel()
			w, err := trace.WorkloadByName(wname)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[string]uint64, len(schemes))
			for _, s := range schemes {
				sys, err := New(reliabilityGoldenConfig(s, w))
				if err != nil {
					t.Fatal(err)
				}
				m, err := sys.Run()
				if err != nil {
					t.Fatal(err)
				}
				if m.RetentionViolations != 0 {
					t.Fatalf("%s: %d retention violations (%s)", s.Name(), m.RetentionViolations, m.FirstViolation)
				}
				if m.Reliability == nil {
					t.Fatalf("%s: no reliability metrics", s.Name())
				}
				got[s.Name()] = m.Reliability.Uncorrectable()
			}
			rrm := got["RRM"]
			for name, u := range got {
				if name != "RRM" && rrm > u {
					t.Errorf("RRM uncorrectable (%d) worse than %s (%d)", rrm, name, u)
				}
			}
			if s3 := got["Static-3-SETs"]; rrm >= s3 {
				t.Errorf("RRM uncorrectable (%d) not strictly below Static-3 (%d)", rrm, s3)
			}
			t.Logf("uncorrectable: rrm=%d s3=%d s4=%d s5=%d s6=%d s7=%d",
				rrm, got["Static-3-SETs"], got["Static-4-SETs"], got["Static-5-SETs"],
				got["Static-6-SETs"], got["Static-7-SETs"])
		})
	}
}
