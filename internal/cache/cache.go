// Package cache implements the processor-side cache hierarchy of Table IV:
// split L1 I/D caches per core, a private L2 per core, and a shared L3
// (the LLC), all set-associative with LRU replacement, write-back and
// write-allocate.
//
// The hierarchy matters to the paper in one specific way: the LLC filters
// program stores into a much smaller stream of dirty writebacks, and the
// RRM learns only from *LLC write operations* (L2 dirty victims arriving
// at the LLC), each tagged with whether the written LLC line was already
// dirty. That dirty-or-not bit is RRM's streaming-write filter, so the
// hierarchy models dirty bits and writeback propagation exactly.
//
// Accesses are synchronous: Access walks the levels and reports where the
// request hit, which registrations the LLC emitted, and which dirty lines
// fell out of the LLC toward memory. Latency composition and the
// asynchronous memory round trip belong to the simulator layer.
package cache

import (
	"fmt"

	"rrmpcm/internal/timing"
)

// AccessKind distinguishes demand loads from stores. Instruction fetches
// use Load against the I-cache.
type AccessKind int

const (
	Load AccessKind = iota
	Store
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	if k == Load {
		return "load"
	}
	return "store"
}

// Config sizes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	LineBytes  int
	HitLatency timing.Time
	MSHRs      int // outstanding-miss budget; enforced by the simulator
}

// Sets returns the number of sets the configuration implies.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Validate checks the level for consistency.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d", c.Name, c.Ways)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by way*line", c.Name, c.SizeBytes)
	}
	sets := c.Sets()
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts the activity of one cache level.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions passed to the next level
}

// HitRate returns hits/accesses, or 0 for an idle cache.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// invalidTag marks an empty way. A real tag is a block address (device
// capacities are far below 2^64 bytes), so the sentinel can never match
// a lookup and the valid bit folds into the tag array itself.
const invalidTag = ^uint64(0)

// Cache is one set-associative level. Way state is stored
// structure-of-arrays: the tag scan — the hot loop of every access —
// touches one densely packed uint64 per way instead of a padded struct,
// and the LRU stamps and dirty bits stay out of the scan's cache lines.
type Cache struct {
	cfg      Config
	tags     []uint64 // nsets*ways, set-major; invalidTag = empty way
	lastUse  []uint64 // parallel to tags
	dirty    []bool   // parallel to tags
	nsets    int
	setMask  uint64
	lineBits uint
	useClock uint64
	stats    Stats
}

// New builds a cache level. It panics on an invalid config: level
// configurations are fixed tables, not user input.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		tags:    make([]uint64, nsets*cfg.Ways),
		lastUse: make([]uint64, nsets*cfg.Ways),
		dirty:   make([]bool, nsets*cfg.Ways),
		nsets:   nsets,
		setMask: uint64(nsets - 1),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	for lb := cfg.LineBytes; lb > 1; lb >>= 1 {
		c.lineBits++
	}
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// lineAddr returns the block-aligned address of addr.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineBytes) - 1) }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.lineBits
	return blk & c.setMask, blk >> 0
}

// ways returns the tag slice of one set (length = associativity).
func (c *Cache) ways(set uint64) (base int, tags []uint64) {
	base = int(set) * c.cfg.Ways
	return base, c.tags[base : base+c.cfg.Ways]
}

// Lookup probes for addr without changing replacement or dirty state.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(addr)
	_, tags := c.ways(set)
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Victim describes a line pushed out of a level.
type Victim struct {
	Addr  uint64 // block-aligned address of the evicted line
	Dirty bool
}

// Access performs a demand access. On a hit it updates LRU (and the dirty
// bit for stores) and returns hit=true. On a miss it allocates the line
// (write-allocate), possibly evicting a victim, and returns hit=false.
// The victim, if any, is returned so the caller can propagate a dirty
// writeback to the next level.
func (c *Cache) Access(addr uint64, kind AccessKind) (hit bool, victim Victim, evicted bool) {
	c.stats.Accesses++
	c.useClock++
	set, tag := c.index(addr)
	base, tags := c.ways(set)
	for i, t := range tags {
		if t == tag {
			c.stats.Hits++
			c.lastUse[base+i] = c.useClock
			if kind == Store {
				c.dirty[base+i] = true
			}
			return true, Victim{}, false
		}
	}
	c.stats.Misses++
	victim, evicted = c.allocate(set, tag, kind == Store)
	return false, victim, evicted
}

// Fill installs addr as a clean line without counting a demand access
// (used when a lower level returns data for an already-counted miss in
// hierarchies that fill non-inclusively). Returns the victim, if any.
func (c *Cache) Fill(addr uint64) (victim Victim, evicted bool) {
	c.useClock++
	set, tag := c.index(addr)
	base, tags := c.ways(set)
	for i, t := range tags {
		if t == tag {
			c.lastUse[base+i] = c.useClock
			return Victim{}, false
		}
	}
	return c.allocate(set, tag, false)
}

// WritebackInto installs a dirty writeback arriving from the level above.
// It returns whether the line was already present and dirty (the LLC's
// "previously dirty" registration bit), plus any victim the allocation
// displaced.
func (c *Cache) WritebackInto(addr uint64) (wasPresent, wasDirty bool, victim Victim, evicted bool) {
	c.stats.Accesses++
	c.useClock++
	set, tag := c.index(addr)
	base, tags := c.ways(set)
	for i, t := range tags {
		if t == tag {
			c.stats.Hits++
			wasDirty = c.dirty[base+i]
			c.dirty[base+i] = true
			c.lastUse[base+i] = c.useClock
			return true, wasDirty, Victim{}, false
		}
	}
	// A full-line writeback allocates without fetching from below.
	c.stats.Misses++
	victim, evicted = c.allocate(set, tag, true)
	return false, false, victim, evicted
}

// allocate installs (set, tag), evicting the LRU way if necessary.
func (c *Cache) allocate(set, tag uint64, dirty bool) (victim Victim, evicted bool) {
	base, tags := c.ways(set)
	lu := c.lastUse[base : base+len(tags)]
	way, oldest, empty := 0, ^uint64(0), false
	for i, t := range tags {
		if t == invalidTag {
			way, empty = i, true
			break
		}
		if lu[i] < oldest {
			oldest = lu[i]
			way = i
		}
	}
	if !empty {
		vDirty := c.dirty[base+way]
		c.stats.Evictions++
		if vDirty {
			c.stats.Writebacks++
		}
		victim = Victim{Addr: c.reconstruct(set, tags[way]), Dirty: vDirty}
		evicted = true
	}
	tags[way] = tag
	c.dirty[base+way] = dirty
	c.lastUse[base+way] = c.useClock
	return victim, evicted
}

// reconstruct rebuilds a block address from set+tag.
func (c *Cache) reconstruct(set, tag uint64) uint64 {
	// tag here is the full block address (index() keeps all block bits
	// in the tag), so reconstruction is just a shift.
	_ = set
	return tag << c.lineBits
}

// Flush invalidates every line, returning the dirty ones so the caller
// can drain them (used at simulation end to account in-flight dirt).
func (c *Cache) Flush() []Victim {
	var dirty []Victim
	for set := 0; set < c.nsets; set++ {
		base, tags := c.ways(uint64(set))
		for i, t := range tags {
			if t != invalidTag && c.dirty[base+i] {
				dirty = append(dirty, Victim{Addr: c.reconstruct(uint64(set), t), Dirty: true})
			}
			tags[i] = invalidTag
			c.dirty[base+i] = false
			c.lastUse[base+i] = 0
		}
	}
	return dirty
}
