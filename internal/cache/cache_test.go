package cache

import (
	"testing"
	"testing/quick"

	"rrmpcm/internal/timing"
)

func tinyConfig() Config {
	return Config{Name: "tiny", SizeBytes: 1024, Ways: 2, LineBytes: 64, HitLatency: 2 * timing.CPUCycle, MSHRs: 4}
}

func TestConfigSets(t *testing.T) {
	c := tinyConfig()
	if got := c.Sets(); got != 8 {
		t.Errorf("Sets = %d, want 8", got)
	}
	llc := DefaultHierarchyConfig().LLC
	if got := llc.Sets(); got != 4096 {
		t.Errorf("LLC sets = %d, want 4096 (6MB/24-way/64B)", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 1024, Ways: 2, LineBytes: 48},
		{Name: "b", SizeBytes: 1024, Ways: 0, LineBytes: 64},
		{Name: "c", SizeBytes: 1000, Ways: 2, LineBytes: 64},
		{Name: "d", SizeBytes: 3 * 64 * 2, Ways: 2, LineBytes: 64}, // 3 sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed", i)
		}
	}
	if err := tinyConfig().Validate(); err != nil {
		t.Errorf("tiny config rejected: %v", err)
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := New(tinyConfig())
	hit, _, _ := c.Access(0x1000, Load)
	if hit {
		t.Error("cold access hit")
	}
	hit, _, _ = c.Access(0x1000, Load)
	if !hit {
		t.Error("second access missed")
	}
	hit, _, _ = c.Access(0x1038, Load) // same 64B line
	if !hit {
		t.Error("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(tinyConfig()) // 8 sets, 2 ways
	// Three lines mapping to the same set (stride = sets*line = 512B).
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, Load)
	c.Access(b, Load)
	c.Access(a, Load)             // a is now MRU
	_, v, ev := c.Access(d, Load) // must evict b
	if !ev || v.Addr != b {
		t.Errorf("evicted %+v (ok=%v), want clean b=%#x", v, ev, b)
	}
	if v.Dirty {
		t.Error("clean victim marked dirty")
	}
	if hit, _, _ := c.Access(a, Load); !hit {
		t.Error("a should have survived")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := New(tinyConfig())
	c.Access(0, Store)
	c.Access(512, Load)
	_, v, ev := c.Access(1024, Load)
	if !ev || v.Addr != 0 || !v.Dirty {
		t.Errorf("victim = %+v ev=%v, want dirty line 0", v, ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestStoreMarksDirtyOnHit(t *testing.T) {
	c := New(tinyConfig())
	c.Access(0, Load)  // clean fill
	c.Access(0, Store) // hit, dirties
	c.Access(512, Load)
	_, v, _ := c.Access(1024, Load)
	if !v.Dirty {
		t.Error("store hit did not dirty the line")
	}
}

func TestWritebackInto(t *testing.T) {
	c := New(tinyConfig())
	present, dirty, _, _ := c.WritebackInto(0)
	if present || dirty {
		t.Errorf("first writeback: present=%v dirty=%v, want false/false", present, dirty)
	}
	present, dirty, _, _ = c.WritebackInto(0)
	if !present || !dirty {
		t.Errorf("second writeback: present=%v dirty=%v, want true/true", present, dirty)
	}
	// A clean demand line then re-written reports wasDirty=false once.
	c2 := New(tinyConfig())
	c2.Access(64, Load)
	_, dirty, _, _ = c2.WritebackInto(64)
	if dirty {
		t.Error("writeback into clean present line should report wasDirty=false")
	}
	_, dirty, _, _ = c2.WritebackInto(64)
	if !dirty {
		t.Error("line should now be dirty")
	}
}

func TestFill(t *testing.T) {
	c := New(tinyConfig())
	c.Fill(0)
	if hit, _, _ := c.Access(0, Load); !hit {
		t.Error("filled line missing")
	}
	// Fill doesn't count as demand access.
	if c.Stats().Accesses != 1 {
		t.Errorf("accesses = %d, want 1", c.Stats().Accesses)
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	c := New(tinyConfig())
	f := func(raw uint32) bool {
		addr := uint64(raw) &^ 63
		cc := New(tinyConfig())
		cc.Access(addr, Store)
		// Evict by filling the set with 2 more lines.
		stride := uint64(cc.Config().Sets() * cc.Config().LineBytes)
		cc.Access(addr+stride, Load)
		_, v, ev := cc.Access(addr+2*stride, Load)
		return ev && v.Addr == addr && v.Dirty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	_ = c
}

func TestFlush(t *testing.T) {
	c := New(tinyConfig())
	c.Access(0, Store)
	c.Access(64, Load)
	c.Access(128, Store)
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Fatalf("flushed %d dirty lines, want 2", len(dirty))
	}
	for _, v := range dirty {
		if v.Addr != 0 && v.Addr != 128 {
			t.Errorf("unexpected dirty line %#x", v.Addr)
		}
	}
	if hit, _, _ := c.Access(0, Load); hit {
		t.Error("flush did not invalidate")
	}
}

func TestLookupDoesNotDisturb(t *testing.T) {
	c := New(tinyConfig())
	c.Access(0, Load)
	c.Access(512, Load)
	for i := 0; i < 10; i++ {
		if !c.Lookup(0) {
			t.Fatal("lookup miss")
		}
	}
	// 0 is still LRU despite lookups, so it gets evicted.
	_, v, ev := c.Access(1024, Load)
	if !ev || v.Addr != 0 {
		t.Errorf("victim %+v, want line 0 (Lookup must not touch LRU)", v)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("idle hit rate should be 0")
	}
	s = Stats{Accesses: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
}

func TestAccessKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("AccessKind strings")
	}
}
