package cache

import (
	"testing"

	"rrmpcm/internal/timing"
)

// smallHierarchy returns a scaled-down hierarchy so tests can force
// evictions without megabytes of traffic.
func smallHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	cpu := timing.CPUCycle
	cfg := HierarchyConfig{
		Cores: 2,
		L1D:   Config{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitLatency: 2 * cpu, MSHRs: 8},
		L1I:   Config{Name: "L1I", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitLatency: 2 * cpu, MSHRs: 8},
		L2:    Config{Name: "L2", SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, HitLatency: 12 * cpu, MSHRs: 12},
		LLC:   Config{Name: "LLC", SizeBytes: 16 << 10, Ways: 8, LineBytes: 64, HitLatency: 35 * cpu, MSHRs: 32},
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDefaultHierarchyConfig(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.LLC.SizeBytes != 6<<20 || cfg.LLC.Ways != 24 {
		t.Errorf("LLC config = %+v, want 6MB 24-way", cfg.LLC)
	}
}

func TestHierarchyValidate(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.Cores = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("0 cores accepted")
	}
	cfg = DefaultHierarchyConfig()
	cfg.L1D.LineBytes = 32
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("mismatched line sizes accepted")
	}
}

func TestColdMissGoesToMemory(t *testing.T) {
	h := smallHierarchy(t)
	r := h.Access(0, 0x10000, Load, false)
	if r.Hit != InMemory {
		t.Errorf("cold access hit at %v", r.Hit)
	}
	if r.MemReadAddr != 0x10000 {
		t.Errorf("MemReadAddr = %#x", r.MemReadAddr)
	}
	wantLat := (2 + 12 + 35) * timing.CPUCycle
	if r.Latency != wantLat {
		t.Errorf("latency = %v, want %v", r.Latency, wantLat)
	}
}

func TestHitLevels(t *testing.T) {
	h := smallHierarchy(t)
	h.Access(0, 0x10000, Load, false)
	r := h.Access(0, 0x10000, Load, false)
	if r.Hit != InL1 {
		t.Errorf("second access hit at %v, want L1", r.Hit)
	}
	if r.Latency != 2*timing.CPUCycle {
		t.Errorf("L1 hit latency = %v", r.Latency)
	}
	// Another core misses its own L1/L2 but hits the shared LLC.
	r = h.Access(1, 0x10000, Load, false)
	if r.Hit != InLLC {
		t.Errorf("cross-core access hit at %v, want LLC", r.Hit)
	}
}

func TestIFetchUsesICache(t *testing.T) {
	h := smallHierarchy(t)
	h.Access(0, 0x20000, Load, true)
	// Same address through the D-cache path: must miss L1 (separate
	// arrays) but hit L2.
	r := h.Access(0, 0x20000, Load, false)
	if r.Hit != InL2 {
		t.Errorf("d-side access after i-fetch hit at %v, want L2", r.Hit)
	}
}

// dirtyLineInLLC stores to addr and then evicts it core-side so the dirt
// lands in the LLC, returning the number of registrations seen.
func TestWritebackCascadeAndRegistration(t *testing.T) {
	h := smallHierarchy(t)
	addr := uint64(0)
	h.Access(0, addr, Store, false)

	// Evict addr from L1 (2 ways, 8 sets, stride 512B within 1KB L1)
	// and then from L2 (4 ways, 16 sets, stride 1KB within 4KB L2).
	h.Access(0, addr+512, Load, false)
	h.Access(0, addr+1024, Load, false) // L1 evicts dirty addr -> L2

	// Now force addr out of L2: fill its L2 set with 4 more lines.
	regsBefore := 0
	var totalRegs int
	for i := 1; i <= 4; i++ {
		r := h.Access(0, addr+uint64(i)*1024, Load, false)
		totalRegs += r.NumRegistrations
	}
	if totalRegs == 0 {
		t.Fatalf("no LLC write registration after forcing L2 eviction (before: %d)", regsBefore)
	}
}

func TestRegistrationWasDirtyBit(t *testing.T) {
	h := smallHierarchy(t)
	// Drive a dirty line into the LLC twice; the second arrival must
	// report WasDirty=true. Use writebackToLLC directly via the same
	// public path: store, evict, re-store, evict.
	var regs []Registration
	evictFromCore := func(addr uint64) {
		h.Access(0, addr, Store, false)
		// Evict from L1: same L1 set = stride 512.
		h.Access(0, addr+512, Load, false)
		h.Access(0, addr+2*512, Load, false)
		// Evict from L2: same L2 set = stride 1024.
		for i := 1; i <= 4; i++ {
			r := h.Access(0, addr+uint64(i)*1024, Load, false)
			for j := 0; j < r.NumRegistrations; j++ {
				regs = append(regs, r.Registrations[j])
			}
		}
	}
	evictFromCore(0)
	evictFromCore(0)
	var forAddr []Registration
	for _, r := range regs {
		if r.Addr == 0 {
			forAddr = append(forAddr, r)
		}
	}
	if len(forAddr) < 2 {
		t.Fatalf("saw %d registrations for line 0, want >=2 (%v)", len(forAddr), regs)
	}
	if forAddr[0].WasDirty {
		t.Error("first LLC write reported WasDirty=true")
	}
	if !forAddr[1].WasDirty {
		t.Error("second LLC write reported WasDirty=false, want true (streaming filter bit)")
	}
}

func TestLLCDirtyVictimBecomesMemWrite(t *testing.T) {
	h := smallHierarchy(t)
	// Dirty a line all the way into the LLC, then thrash the LLC set so
	// the dirty line is evicted to memory. LLC: 8 ways, 32 sets,
	// stride = 32*64 = 2KB.
	target := uint64(0)
	h.Access(0, target, Store, false)
	h.Access(0, target+512, Load, false)
	h.Access(0, target+1024, Load, false) // dirty into L2
	for i := 1; i <= 4; i++ {
		h.Access(0, target+uint64(i)*1024, Load, false) // dirty into LLC
	}
	memWrites := 0
	for i := 1; i <= 12; i++ {
		r := h.Access(1, target+uint64(i)*2048, Load, false)
		memWrites += r.NumMemWrites
	}
	if memWrites == 0 {
		t.Error("thrashing LLC never produced a memory write for the dirty victim")
	}
}

func TestMPKIAccounting(t *testing.T) {
	h := smallHierarchy(t)
	if h.LLCMPKI() != 0 {
		t.Error("MPKI with no instructions should be 0")
	}
	h.CountInstructions(1000)
	h.Access(0, 0x1000, Load, false) // 1 LLC miss
	h.Access(0, 0x1000, Load, false) // L1 hit
	if got := h.LLCMPKI(); got != 1.0 {
		t.Errorf("MPKI = %v, want 1.0", got)
	}
	if h.Instructions() != 1000 {
		t.Errorf("Instructions = %d", h.Instructions())
	}
}

func TestFlushDirty(t *testing.T) {
	h := smallHierarchy(t)
	h.Access(0, 0, Store, false)
	h.Access(1, 4096, Store, false)
	h.Access(0, 8192, Load, false)
	dirty := h.FlushDirty()
	if len(dirty) != 2 {
		t.Fatalf("flushed %d dirty blocks, want 2: %v", len(dirty), dirty)
	}
	seen := map[uint64]bool{}
	for _, a := range dirty {
		seen[a] = true
	}
	if !seen[0] || !seen[4096] {
		t.Errorf("flushed addresses %v, want 0 and 4096", dirty)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{InL1: "L1", InL2: "L2", InLLC: "LLC", InMemory: "memory"} {
		if l.String() != want {
			t.Errorf("Level %d = %q, want %q", int(l), l.String(), want)
		}
	}
}
