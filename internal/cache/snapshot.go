package cache

import "rrmpcm/internal/snapshot"

const (
	snapLevelSection = 0x4341 // "CA"
	snapHierSection  = 0x4348 // "CH"
)

// Snapshot writes one level's complete tag/dirty/LRU state. Line flags
// pack into one byte; tags and LRU stamps are fixed-width, so a given
// cache state always encodes to the same bytes.
func (c *Cache) Snapshot(w *snapshot.Writer) {
	w.Section(snapLevelSection)
	w.U64(c.useClock)
	w.U64(c.stats.Accesses)
	w.U64(c.stats.Hits)
	w.U64(c.stats.Misses)
	w.U64(c.stats.Evictions)
	w.U64(c.stats.Writebacks)
	w.U32(uint32(c.nsets))
	w.U32(uint32(c.cfg.Ways))
	// Invalid ways encode as all-zero (flags 0, tag 0, stamp 0), exactly
	// as the former padded-struct layout serialized them, so the blob
	// stays byte-identical across the storage-layout change.
	for i, t := range c.tags {
		var flags uint8
		if t != invalidTag {
			flags |= 1
		} else {
			t = 0
		}
		if c.dirty[i] {
			flags |= 2
		}
		w.U8(flags)
		w.U64(t)
		w.U64(c.lastUse[i])
	}
}

// Restore loads state written by Snapshot into a same-geometry level.
func (c *Cache) Restore(r *snapshot.Reader) {
	r.Section(snapLevelSection)
	c.useClock = r.U64()
	c.stats.Accesses = r.U64()
	c.stats.Hits = r.U64()
	c.stats.Misses = r.U64()
	c.stats.Evictions = r.U64()
	c.stats.Writebacks = r.U64()
	if sets := r.U32(); r.Err() == nil && int(sets) != c.nsets {
		r.Fail("cache %s: snapshot has %d sets, live cache %d", c.cfg.Name, sets, c.nsets)
		return
	}
	if ways := r.U32(); r.Err() == nil && int(ways) != c.cfg.Ways {
		r.Fail("cache %s: snapshot has %d ways, live cache %d", c.cfg.Name, ways, c.cfg.Ways)
		return
	}
	for i := range c.tags {
		flags := r.U8()
		tag := r.U64()
		if flags&1 == 0 {
			tag = invalidTag
		}
		c.tags[i] = tag
		c.dirty[i] = flags&2 != 0
		c.lastUse[i] = r.U64()
		if r.Err() != nil {
			return
		}
	}
}

// Snapshot writes the whole hierarchy: every level plus the retired
// instruction counter.
func (h *Hierarchy) Snapshot(w *snapshot.Writer) {
	w.Section(snapHierSection)
	w.U64(h.insts)
	for core := 0; core < h.cfg.Cores; core++ {
		h.l1d[core].Snapshot(w)
		h.l1i[core].Snapshot(w)
		h.l2[core].Snapshot(w)
	}
	h.llc.Snapshot(w)
}

// Restore loads hierarchy state into a same-configuration hierarchy.
func (h *Hierarchy) Restore(r *snapshot.Reader) {
	r.Section(snapHierSection)
	h.insts = r.U64()
	for core := 0; core < h.cfg.Cores; core++ {
		h.l1d[core].Restore(r)
		h.l1i[core].Restore(r)
		h.l2[core].Restore(r)
	}
	h.llc.Restore(r)
}
