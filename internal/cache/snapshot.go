package cache

import "rrmpcm/internal/snapshot"

const (
	snapLevelSection = 0x4341 // "CA"
	snapHierSection  = 0x4348 // "CH"
)

// Snapshot writes one level's complete tag/dirty/LRU state. Line flags
// pack into one byte; tags and LRU stamps are fixed-width, so a given
// cache state always encodes to the same bytes.
func (c *Cache) Snapshot(w *snapshot.Writer) {
	w.Section(snapLevelSection)
	w.U64(c.useClock)
	w.U64(c.stats.Accesses)
	w.U64(c.stats.Hits)
	w.U64(c.stats.Misses)
	w.U64(c.stats.Evictions)
	w.U64(c.stats.Writebacks)
	w.U32(uint32(len(c.sets)))
	w.U32(uint32(c.cfg.Ways))
	for set := range c.sets {
		for i := range c.sets[set] {
			l := &c.sets[set][i]
			var flags uint8
			if l.valid {
				flags |= 1
			}
			if l.dirty {
				flags |= 2
			}
			w.U8(flags)
			w.U64(l.tag)
			w.U64(l.lastUse)
		}
	}
}

// Restore loads state written by Snapshot into a same-geometry level.
func (c *Cache) Restore(r *snapshot.Reader) {
	r.Section(snapLevelSection)
	c.useClock = r.U64()
	c.stats.Accesses = r.U64()
	c.stats.Hits = r.U64()
	c.stats.Misses = r.U64()
	c.stats.Evictions = r.U64()
	c.stats.Writebacks = r.U64()
	if sets := r.U32(); r.Err() == nil && int(sets) != len(c.sets) {
		r.Fail("cache %s: snapshot has %d sets, live cache %d", c.cfg.Name, sets, len(c.sets))
		return
	}
	if ways := r.U32(); r.Err() == nil && int(ways) != c.cfg.Ways {
		r.Fail("cache %s: snapshot has %d ways, live cache %d", c.cfg.Name, ways, c.cfg.Ways)
		return
	}
	for set := range c.sets {
		for i := range c.sets[set] {
			l := &c.sets[set][i]
			flags := r.U8()
			l.valid = flags&1 != 0
			l.dirty = flags&2 != 0
			l.tag = r.U64()
			l.lastUse = r.U64()
			if r.Err() != nil {
				return
			}
		}
	}
}

// Snapshot writes the whole hierarchy: every level plus the retired
// instruction counter.
func (h *Hierarchy) Snapshot(w *snapshot.Writer) {
	w.Section(snapHierSection)
	w.U64(h.insts)
	for core := 0; core < h.cfg.Cores; core++ {
		h.l1d[core].Snapshot(w)
		h.l1i[core].Snapshot(w)
		h.l2[core].Snapshot(w)
	}
	h.llc.Snapshot(w)
}

// Restore loads hierarchy state into a same-configuration hierarchy.
func (h *Hierarchy) Restore(r *snapshot.Reader) {
	r.Section(snapHierSection)
	h.insts = r.U64()
	for core := 0; core < h.cfg.Cores; core++ {
		h.l1d[core].Restore(r)
		h.l1i[core].Restore(r)
		h.l2[core].Restore(r)
	}
	h.llc.Restore(r)
}
