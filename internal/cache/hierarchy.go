package cache

import (
	"fmt"

	"rrmpcm/internal/timing"
)

// Registration is the LLC Write Registration message of paper §IV-B: sent
// to the RRM for every LLC write operation (an L2 dirty victim arriving at
// the LLC), carrying whether the written LLC line was previously dirty.
type Registration struct {
	Addr     uint64
	WasDirty bool
}

// HierarchyConfig sizes the three levels of Table IV.
type HierarchyConfig struct {
	Cores int
	L1D   Config
	L1I   Config
	L2    Config
	LLC   Config
}

// DefaultHierarchyConfig returns the Table IV processor cache setup:
// 32 KB 4-way L1 I/D per core (2-cycle), 256 KB 8-way L2 per core
// (12-cycle), shared 6 MB 24-way LLC (35-cycle).
func DefaultHierarchyConfig() HierarchyConfig {
	cpu := timing.CPUCycle
	return HierarchyConfig{
		Cores: 4,
		L1D:   Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitLatency: 2 * cpu, MSHRs: 8},
		L1I:   Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitLatency: 2 * cpu, MSHRs: 8},
		L2:    Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, HitLatency: 12 * cpu, MSHRs: 12},
		LLC:   Config{Name: "LLC", SizeBytes: 6 << 20, Ways: 24, LineBytes: 64, HitLatency: 35 * cpu, MSHRs: 32},
	}
}

// Validate checks every level.
func (c HierarchyConfig) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("cache: %d cores", c.Cores)
	}
	for _, lv := range []Config{c.L1D, c.L1I, c.L2, c.LLC} {
		if err := lv.Validate(); err != nil {
			return err
		}
		if lv.LineBytes != c.LLC.LineBytes {
			return fmt.Errorf("cache: level %s line size %d differs from LLC %d",
				lv.Name, lv.LineBytes, c.LLC.LineBytes)
		}
	}
	return nil
}

// Level identifies where an access was satisfied.
type Level int

const (
	InL1 Level = iota + 1
	InL2
	InLLC
	InMemory
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case InL1:
		return "L1"
	case InL2:
		return "L2"
	case InLLC:
		return "LLC"
	case InMemory:
		return "memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Result reports everything one demand access did to the hierarchy.
// Fixed-size arrays keep the access path allocation-free; a single access
// can cascade at most two writebacks toward memory (the L1→L2 victim's
// LLC displacement and the demand fill's LLC displacement).
type Result struct {
	Hit Level // level that supplied the data; InMemory means LLC missed

	// Latency is the on-chip lookup latency to the point of service
	// (memory time, if any, is added by the simulator).
	Latency timing.Time

	// MemReadAddr is the block address to fetch when Hit == InMemory.
	MemReadAddr uint64

	// MemWrites are block addresses of dirty LLC victims that must be
	// written to PCM.
	MemWrites    [4]uint64
	NumMemWrites int

	// Registrations are the LLC write-registration messages this access
	// produced (L2 dirty victims written into the LLC).
	Registrations    [4]Registration
	NumRegistrations int
}

// Hierarchy wires per-core L1/L2 to a shared LLC.
type Hierarchy struct {
	cfg HierarchyConfig
	l1d []*Cache
	l1i []*Cache
	l2  []*Cache
	llc *Cache

	insts uint64 // retired instructions reported by the cores, for MPKI
}

// NewHierarchy builds the configured hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, llc: New(cfg.LLC)}
	for i := 0; i < cfg.Cores; i++ {
		d, ic, l2 := cfg.L1D, cfg.L1I, cfg.L2
		d.Name = fmt.Sprintf("L1D.%d", i)
		ic.Name = fmt.Sprintf("L1I.%d", i)
		l2.Name = fmt.Sprintf("L2.%d", i)
		h.l1d = append(h.l1d, New(d))
		h.l1i = append(h.l1i, New(ic))
		h.l2 = append(h.l2, New(l2))
	}
	return h, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// LLC exposes the shared cache (read-only use: stats, lookups).
func (h *Hierarchy) LLC() *Cache { return h.llc }

// L1DStats, L2Stats return per-core level stats.
func (h *Hierarchy) L1DStats(core int) Stats { return h.l1d[core].Stats() }

// L2Stats returns the private L2 stats of a core.
func (h *Hierarchy) L2Stats(core int) Stats { return h.l2[core].Stats() }

// CountInstructions adds retired instructions for MPKI accounting.
func (h *Hierarchy) CountInstructions(n uint64) { h.insts += n }

// LLCMPKI returns LLC misses per thousand retired instructions.
func (h *Hierarchy) LLCMPKI() float64 {
	if h.insts == 0 {
		return 0
	}
	return float64(h.llc.Stats().Misses) / float64(h.insts) * 1000
}

// Instructions returns the instruction count reported so far.
func (h *Hierarchy) Instructions() uint64 { return h.insts }

// Access performs a data access for core against the hierarchy, cascading
// writebacks level by level. Instruction fetches pass ifetch=true.
func (h *Hierarchy) Access(core int, addr uint64, kind AccessKind, ifetch bool) Result {
	var r Result
	h.AccessInto(core, addr, kind, ifetch, &r)
	return r
}

// AccessInto is Access writing into a caller-owned Result, for hot paths
// that recycle the (fairly large) struct instead of copying it up the
// stack. *r is fully overwritten.
func (h *Hierarchy) AccessInto(core int, addr uint64, kind AccessKind, ifetch bool, r *Result) {
	*r = Result{}
	l1 := h.l1d[core]
	if ifetch {
		l1 = h.l1i[core]
	}
	r.Latency = l1.cfg.HitLatency

	hit, victim, evicted := l1.Access(addr, kind)
	if evicted && victim.Dirty {
		h.writebackToL2(core, victim.Addr, r)
	}
	if hit {
		r.Hit = InL1
		return
	}

	l2 := h.l2[core]
	r.Latency += l2.cfg.HitLatency
	hit2, v2, ev2 := l2.Access(addr, Load) // fills below L1 are clean
	if ev2 && v2.Dirty {
		h.writebackToLLC(v2.Addr, r)
	}
	if hit2 {
		r.Hit = InL2
		return
	}

	r.Latency += h.llc.cfg.HitLatency
	hit3, v3, ev3 := h.llc.Access(addr, Load)
	if ev3 && v3.Dirty {
		h.memWrite(v3.Addr, r)
	}
	if hit3 {
		r.Hit = InLLC
		return
	}
	r.Hit = InMemory
	r.MemReadAddr = h.llc.lineAddr(addr)
}

// writebackToL2 pushes an L1 dirty victim into the core's L2.
func (h *Hierarchy) writebackToL2(core int, addr uint64, r *Result) {
	_, _, victim, evicted := h.l2[core].WritebackInto(addr)
	if evicted && victim.Dirty {
		h.writebackToLLC(victim.Addr, r)
	}
}

// writebackToLLC pushes an L2 dirty victim into the LLC, emitting the RRM
// write-registration message.
func (h *Hierarchy) writebackToLLC(addr uint64, r *Result) {
	_, wasDirty, victim, evicted := h.llc.WritebackInto(addr)
	if r.NumRegistrations < len(r.Registrations) {
		r.Registrations[r.NumRegistrations] = Registration{Addr: addr, WasDirty: wasDirty}
		r.NumRegistrations++
	}
	if evicted && victim.Dirty {
		h.memWrite(victim.Addr, r)
	}
}

func (h *Hierarchy) memWrite(addr uint64, r *Result) {
	if r.NumMemWrites < len(r.MemWrites) {
		r.MemWrites[r.NumMemWrites] = addr
		r.NumMemWrites++
	}
}

// FlushDirty drains every dirty line in the hierarchy toward memory,
// returning the block addresses that would be written to PCM. Used at
// simulation end so short runs don't hide in-cache dirt from wear
// accounting.
func (h *Hierarchy) FlushDirty() []uint64 {
	var mem []uint64
	// L1 dirt merges into L2, L2 into LLC, LLC to memory — but since
	// everything is being flushed anyway, each dirty line surfaces as
	// one memory write, deduplicated by block address.
	seen := map[uint64]bool{}
	add := func(addr uint64) {
		if !seen[addr] {
			seen[addr] = true
			mem = append(mem, addr)
		}
	}
	for core := 0; core < h.cfg.Cores; core++ {
		for _, v := range h.l1d[core].Flush() {
			add(v.Addr)
		}
		for _, v := range h.l1i[core].Flush() {
			add(v.Addr)
		}
		for _, v := range h.l2[core].Flush() {
			add(v.Addr)
		}
	}
	for _, v := range h.llc.Flush() {
		add(v.Addr)
	}
	return mem
}
