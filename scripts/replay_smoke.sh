#!/usr/bin/env sh
# replay_smoke.sh — end-to-end proof of the trace-file round trip:
# export a synthetic workload with tracegen, simulate the generator
# configuration and the replay configuration with identical windows, and
# require byte-identical JSON metrics. This is the executable form of
# the subsystem's contract (DESIGN.md §13): a recorded trace is a
# perfect substitute for the generator that produced it.
#
# Usage: scripts/replay_smoke.sh [workload] [ops-per-core]
# Env:   GO overrides the go binary.
set -eu
cd "$(dirname "$0")/.."

WORKLOAD=${1:-hmmer}
OPS=${2:-1500000}
GO=${GO:-go}

TMP=$(mktemp -d)
trap 'rm -f rrmsim_gen.json rrmsim_replay.json; rm -rf "$TMP"' EXIT

echo "replay_smoke: exporting $WORKLOAD ($OPS ops/core)" >&2
"$GO" run ./cmd/tracegen -workload "$WORKLOAD" -export "$TMP" -ops "$OPS" -seed 1 >&2

TRACES=$(ls "$TMP"/*.rrmt | sort | paste -sd, -)
SIMFLAGS="-workload $WORKLOAD -scheme rrm -duration 4ms -warmup 1ms -timescale 1000 -seed 1 -json"

echo "replay_smoke: generator run" >&2
"$GO" run ./cmd/rrmsim $SIMFLAGS > rrmsim_gen.json
echo "replay_smoke: replay run" >&2
"$GO" run ./cmd/rrmsim $SIMFLAGS -replay "$TRACES" > rrmsim_replay.json

if cmp -s rrmsim_gen.json rrmsim_replay.json; then
    echo "replay_smoke: OK — replay metrics byte-identical to generator metrics"
else
    echo "replay_smoke: FAIL — replay metrics differ from generator metrics" >&2
    diff rrmsim_gen.json rrmsim_replay.json >&2 || true
    exit 1
fi
