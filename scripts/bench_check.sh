#!/usr/bin/env sh
# bench_check.sh — the CI perf gate: re-run the tracked hot-path
# benchmarks and compare them against the committed BENCH_10.json. A
# benchmark fails the gate when its ns/op regresses by more than 10%
# (absorbing ordinary machine noise) or its allocs/op regresses at all
# (allocation counts are deterministic, so any increase is a real
# regression). Exit status 1 lists every failing benchmark.
#
# Usage: scripts/bench_check.sh [reference.json]
# Env:   BENCHTIME overrides go test -benchtime (default 1s).
#        NS_TOLERANCE_PCT overrides the ns/op tolerance (default 10).
set -eu
cd "$(dirname "$0")/.."

REF=${1:-BENCH_10.json}
BENCH='^(BenchmarkTraceGenerator|BenchmarkCacheHierarchyAccess|BenchmarkMemoryController|BenchmarkFullSystemSimulation|BenchmarkShardedSimulation|BenchmarkHybridDRAMHit)$'

if [ ! -f "$REF" ]; then
    echo "bench_check: reference $REF missing (run scripts/bench_json.sh first)" >&2
    exit 2
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

"${GO:-go}" test -run '^$' -bench "$BENCH" -benchmem -benchtime "${BENCHTIME:-1s}" -count 1 . | tee "$RAW" >&2

awk -v tol="${NS_TOLERANCE_PCT:-10}" '
# Reference file: pretty-printed bench_json.sh output — benchmark name
# on its own line, one key per following line. The nested "baseline"
# object sits on a single line and is skipped so only the measured
# top-level values are read.
FNR == NR {
    if (/"baseline"/) next
    if (match($0, /"Benchmark[^"]*"/)) {
        cur = substr($0, RSTART + 1, RLENGTH - 2)
    } else if (cur != "" && /"ns_per_op"/) {
        ref_ns[cur] = field($0, "ns_per_op")
    } else if (cur != "" && /"allocs_per_op"/) {
        ref_allocs[cur] = field($0, "allocs_per_op")
    }
    next
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns[name] = $(i - 1)
        else if ($i == "allocs/op") allocs[name] = $(i - 1)
    }
    checked[++n] = name
}
END {
    bad = 0
    for (i = 1; i <= n; i++) {
        name = checked[i]
        if (!(name in ref_ns)) {
            printf "bench_check: %s missing from reference (regenerate it)\n", name
            bad = 1
            continue
        }
        if (ref_ns[name] > 0 && ns[name] > ref_ns[name] * (1 + tol / 100)) {
            printf "bench_check: FAIL %s: %.0f ns/op vs reference %.0f (%+.1f%%, tolerance %s%%)\n", \
                name, ns[name], ref_ns[name], 100 * (ns[name] - ref_ns[name]) / ref_ns[name], tol
            bad = 1
        }
        if (allocs[name] > ref_allocs[name]) {
            printf "bench_check: FAIL %s: %d allocs/op vs reference %d\n", \
                name, allocs[name], ref_allocs[name]
            bad = 1
        }
    }
    if (n == 0) { print "bench_check: no benchmarks ran"; bad = 1 }
    if (!bad) printf "bench_check: %d benchmarks within tolerance\n", n
    exit bad
}
function field(line, key,    rest) {
    if (!match(line, "\"" key "\":[ ]*[-0-9.e+]+")) return 0
    rest = substr(line, RSTART, RLENGTH)
    sub(/.*:[ ]*/, "", rest)
    return rest + 0
}
' "$REF" "$RAW"
