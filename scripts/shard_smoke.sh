#!/usr/bin/env sh
# shard_smoke.sh — end-to-end proof of the sharded engine's contract
# (DESIGN.md §17): the same configuration run on the serial engine and
# at -shards 4 must produce byte-identical JSON metrics. This exercises
# the real CLI path (flag parsing, system assembly, worker goroutines
# when GOMAXPROCS > 1) that the in-package property tests cannot.
#
# Usage: scripts/shard_smoke.sh [workload] [shards]
# Env:   GO overrides the go binary.
set -eu
cd "$(dirname "$0")/.."

WORKLOAD=${1:-GemsFDTD}
SHARDS=${2:-4}
GO=${GO:-go}

trap 'rm -f rrmsim_serial.json rrmsim_sharded.json' EXIT

SIMFLAGS="-workload $WORKLOAD -scheme rrm -duration 4ms -warmup 1ms -timescale 1000 -seed 1 -json"

echo "shard_smoke: serial run" >&2
"$GO" run ./cmd/rrmsim $SIMFLAGS > rrmsim_serial.json
echo "shard_smoke: sharded run (-shards $SHARDS)" >&2
"$GO" run ./cmd/rrmsim $SIMFLAGS -shards "$SHARDS" > rrmsim_sharded.json

if cmp -s rrmsim_serial.json rrmsim_sharded.json; then
    echo "shard_smoke: OK — sharded metrics byte-identical to serial metrics"
else
    echo "shard_smoke: FAIL — sharded metrics differ from serial metrics" >&2
    diff rrmsim_serial.json rrmsim_sharded.json >&2 || true
    exit 1
fi
