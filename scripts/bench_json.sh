#!/usr/bin/env sh
# bench_json.sh — run the simulator hot-path benchmarks and emit a
# machine-readable JSON report (default BENCH_10.json) with ns/op, B/op
# and allocs/op per benchmark, the recorded pre-optimization baseline
# from scripts/bench_baseline_3.json (where one exists), and the
# relative improvement. The cold/warm sweep pair measures the warm-start
# engine: WarmStartSweep forks three of its four runs from a shared
# warmup snapshot instead of re-simulating the prefix. The trace trio
# (Generator / GeneratorPhases+Burst / Replay) compares stationary
# generation, non-stationary modulation, and trace-file decode. The
# full/sampled pair at the end runs one steady-state configuration
# cycle-accurately and through the interval-sampling executor; the
# ns/op ratio is the sampling speedup (>=10x at this configuration).
# The hybrid pair measures the DRAM staging tier: HybridDRAMHit is the
# resident-page fast path (routing + DRAM array, zero PCM traffic) and
# HybridMigration a full promote/copy/demote churn cycle.
#
# Usage: scripts/bench_json.sh [output.json]
# Env:   BENCHTIME overrides go test -benchtime (default 1s).
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_10.json}
BASELINE=scripts/bench_baseline_3.json
BENCH='^(BenchmarkTraceGenerator|BenchmarkTraceGeneratorPhases|BenchmarkTraceGeneratorBurst|BenchmarkTraceReplay|BenchmarkCacheHierarchyAccess|BenchmarkMemoryController|BenchmarkFullSystemSimulation|BenchmarkShardedSimulation|BenchmarkReliabilitySimulation|BenchmarkColdStartSweep|BenchmarkWarmStartSweep|BenchmarkFullRun|BenchmarkSampledRun|BenchmarkHybridDRAMHit|BenchmarkHybridMigration)$'

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

"${GO:-go}" test -run '^$' -bench "$BENCH" -benchmem -benchtime "${BENCHTIME:-1s}" -count 1 . | tee "$RAW" >&2

awk -v goversion="$("${GO:-go}" env GOVERSION)" '
# Baseline file: one benchmark per line, fixed key order (see
# scripts/bench_baseline_3.json).
FNR == NR {
    if (match($0, /"Benchmark[^"]*"/)) {
        name = substr($0, RSTART + 1, RLENGTH - 2)
        line = $0
        base_ns[name] = field(line, "ns_per_op")
        base_b[name] = field(line, "b_per_op")
        base_allocs[name] = field(line, "allocs_per_op")
    }
    next
}
# go test -bench output: Name-P  iters  V ns/op  [V unit ...]  V B/op  V allocs/op
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    order[++n] = name
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns[name] = $(i - 1)
        else if ($i == "B/op") bytes[name] = $(i - 1)
        else if ($i == "allocs/op") allocs[name] = $(i - 1)
    }
}
END {
    printf "{\n"
    printf "  \"schema\": \"rrmpcm-bench/1\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\n", name
        printf "      \"ns_per_op\": %s,\n", ns[name]
        printf "      \"b_per_op\": %s,\n", bytes[name]
        printf "      \"allocs_per_op\": %s", allocs[name]
        if (name in base_ns) {
            printf ",\n      \"baseline\": {\"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s},\n", \
                base_ns[name], base_b[name], base_allocs[name]
            printf "      \"ns_improvement_pct\": %.1f,\n", pct(base_ns[name], ns[name])
            printf "      \"allocs_improvement_pct\": %.1f\n", pct(base_allocs[name], allocs[name])
        } else {
            printf "\n"
        }
        printf "    }%s\n", (i < n ? "," : "")
    }
    printf "  }\n}\n"
}
function field(line, key,    rest) {
    # Extract the number following "key": on the line.
    if (!match(line, "\"" key "\":[ ]*[-0-9.e+]+")) return 0
    rest = substr(line, RSTART, RLENGTH)
    sub(/.*:[ ]*/, "", rest)
    return rest + 0
}
function pct(base, now) {
    if (base + 0 == 0) return 0
    return 100 * (base - now) / base
}
' "$BASELINE" "$RAW" > "$OUT"

echo "wrote $OUT" >&2
