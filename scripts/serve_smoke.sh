#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the HTTP simulation service.
#
# Builds rrmserve, boots it on a scratch port, submits one quick job,
# follows it to completion, and asserts the result endpoint returns 200
# with plausible metrics. Exits non-zero on any failure. Needs curl;
# uses no other tooling so it runs in a bare CI container.
set -eu

ADDR="${RRMSERVE_ADDR:-127.0.0.1:18321}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
SRV_PID=""

cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    [ -n "$SRV_PID" ] && wait "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== building rrmserve"
go build -o "$TMP/rrmserve" ./cmd/rrmserve

echo "== starting rrmserve on $ADDR"
"$TMP/rrmserve" -addr "$ADDR" -cache-dir "$TMP/cache" >"$TMP/server.log" 2>&1 &
SRV_PID=$!

# Wait for readiness (the binary starts in milliseconds, but don't race it).
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "server never became healthy" >&2
        cat "$TMP/server.log" >&2
        exit 1
    fi
    sleep 0.2
done

echo "== submitting quick job"
CODE=$(curl -sS -o "$TMP/submit.json" -w '%{http_code}' \
    -H 'Content-Type: application/json' \
    -d '{"scheme":"static-7","workload":"GemsFDTD","quick":true}' \
    "$BASE/api/v1/jobs")
case "$CODE" in
    200 | 202) ;;
    *)
        echo "submit returned HTTP $CODE:" >&2
        cat "$TMP/submit.json" >&2
        exit 1
        ;;
esac
ID=$(sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' "$TMP/submit.json" | head -n 1)
if [ -z "$ID" ]; then
    echo "no job id in submit response: $(cat "$TMP/submit.json")" >&2
    exit 1
fi
echo "   job $ID (HTTP $CODE)"

echo "== waiting for completion"
i=0
while :; do
    CODE=$(curl -sS -o "$TMP/result.json" -w '%{http_code}' \
        "$BASE/api/v1/jobs/$ID/result")
    [ "$CODE" = 200 ] && break
    if [ "$CODE" != 202 ]; then
        echo "result returned HTTP $CODE:" >&2
        cat "$TMP/result.json" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
        echo "job did not finish within 60s" >&2
        exit 1
    fi
    sleep 0.2
done

grep -q '"metrics"' "$TMP/result.json" || {
    echo "result has no metrics: $(cat "$TMP/result.json")" >&2
    exit 1
}

echo "== checking progress stream replay"
curl -sS --max-time 10 "$BASE/api/v1/jobs/$ID/events?format=ndjson" >"$TMP/events.ndjson"
for state in queued running done; do
    grep -q "\"state\":\"$state\"" "$TMP/events.ndjson" || {
        echo "event stream missing state $state:" >&2
        cat "$TMP/events.ndjson" >&2
        exit 1
    }
done

echo "== checking metrics endpoint"
curl -fsS "$BASE/metrics" | grep -q '^rrmserve_jobs_done_total 1$' || {
    echo "metrics endpoint did not count the job" >&2
    curl -fsS "$BASE/metrics" >&2 || true
    exit 1
}

echo "== smoke test passed (job $ID)"
