#!/usr/bin/env sh
# sample_smoke.sh — end-to-end proof of the interval-sampling executor:
# run one steady-state configuration (retention clock at real time) in
# full and again sampled (8 windows x 100 us, stride-16 fast-forward),
# then require (a) the sampled run's 95% confidence interval to contain
# the full run's IPC and (b) a wall-clock speedup over the full run.
# This is the executable form of DESIGN.md §15's contract; the BENCH_8
# pair (BenchmarkFullRun / BenchmarkSampledRun) records the headline
# >=10x number at a longer duration.
#
# Usage: scripts/sample_smoke.sh [duration] [min-speedup]
# Env:   GO overrides the go binary.
set -eu
cd "$(dirname "$0")/.."

DURATION=${1:-20ms}
MIN_SPEEDUP=${2:-3}
GO=${GO:-go}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$GO" build -o "$TMP/rrmsim" ./cmd/rrmsim

SIMFLAGS="-workload GemsFDTD -scheme rrm -duration $DURATION -warmup 1ms -timescale 1 -seed 1 -json"

echo "sample_smoke: full run ($DURATION at timescale 1)" >&2
T0=$(date +%s%N)
"$TMP/rrmsim" $SIMFLAGS > "$TMP/full.json"
T1=$(date +%s%N)

echo "sample_smoke: sampled run (8 windows x 100 us, stride 16)" >&2
"$TMP/rrmsim" $SIMFLAGS -sample -sample-windows 8 -sample-window 100us \
    -sample-detail 100us -sample-stride 16 > "$TMP/sampled.json"
T2=$(date +%s%N)

FULL_IPC=$(jq -r '.IPC' "$TMP/full.json")
LO=$(jq -r '.sampling.ipc.lo' "$TMP/sampled.json")
HI=$(jq -r '.sampling.ipc.hi' "$TMP/sampled.json")
MEAN=$(jq -r '.sampling.ipc.mean' "$TMP/sampled.json")
if [ "$LO" = null ] || [ "$HI" = null ] || [ "$MEAN" = null ]; then
    echo "sample_smoke: FAIL — sampled run reported no finite IPC interval" >&2
    exit 1
fi

awk -v full="$FULL_IPC" -v lo="$LO" -v hi="$HI" -v mean="$MEAN" \
    -v t0="$T0" -v t1="$T1" -v t2="$T2" -v min="$MIN_SPEEDUP" '
BEGIN {
    fullwall = (t1 - t0) / 1e9
    sampwall = (t2 - t1) / 1e9
    speedup = sampwall > 0 ? fullwall / sampwall : 0
    printf "sample_smoke: full IPC %.4f in %.2f s; sampled %.4f [%.4f, %.4f] in %.2f s (%.1fx)\n", \
        full, fullwall, mean, lo, hi, sampwall, speedup > "/dev/stderr"
    bad = 0
    if (full < lo || full > hi) {
        printf "sample_smoke: FAIL — full-run IPC %.4f outside sampled 95%% CI [%.4f, %.4f]\n", \
            full, lo, hi > "/dev/stderr"
        bad = 1
    }
    if (speedup < min) {
        printf "sample_smoke: FAIL — speedup %.1fx below required %sx\n", \
            speedup, min > "/dev/stderr"
        bad = 1
    }
    if (!bad) print "sample_smoke: OK — interval contains the full run and sampling is faster" > "/dev/stderr"
    exit bad
}'
