#!/bin/sh
# cluster_load.sh — acceptance-scale load run of the sweep fabric.
#
# Drives the in-tree load harness (internal/cluster/load_test.go) at
# full scale: >= 100k idempotent submissions through a 4-worker local
# cluster with one worker killed mid-run, gated on p99 submit latency,
# zero duplicate simulations and byte-identical results versus a
# single-process run. Scale and gate are overridable:
#
#   RRM_CLUSTER_LOAD_N       submissions (default 100000)
#   RRM_CLUSTER_LOAD_P99_MS  p99 submit-latency gate in ms (default 500)
set -eu
cd "$(dirname "$0")/.."

N="${RRM_CLUSTER_LOAD_N:-100000}"
P99="${RRM_CLUSTER_LOAD_P99_MS:-500}"
echo "== cluster load: $N submissions, p99 gate ${P99}ms"
RRM_CLUSTER_LOAD_N="$N" RRM_CLUSTER_LOAD_P99_MS="$P99" \
    "${GO:-go}" test ./internal/cluster -run TestClusterLoadHarness -v -timeout 30m
