#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test of the distributed sweep
# fabric with real processes.
#
# Boots a coordinator and two workers (shared content-addressed
# artifact store), pushes a batch of quick jobs through the
# coordinator, SIGKILLs one worker mid-flight, and asserts that
#   - every job still completes (reroute + shared store),
#   - the dead worker leaves the ring (heartbeat TTL),
#   - resubmitting the whole batch runs zero new simulations
#     (fleet-wide idempotency: the no-duplicates check).
# Needs curl; no other tooling, so it runs in a bare CI container.
set -eu

COORD_ADDR="${RRM_COORD_ADDR:-127.0.0.1:18320}"
WA_ADDR="${RRM_WORKER_A_ADDR:-127.0.0.1:18331}"
WB_ADDR="${RRM_WORKER_B_ADDR:-127.0.0.1:18332}"
BASE="http://$COORD_ADDR"
JOBS=6
TMP="$(mktemp -d)"
COORD_PID="" WA_PID="" WB_PID=""

cleanup() {
    for pid in "$COORD_PID" "$WA_PID" "$WB_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    for pid in "$COORD_PID" "$WA_PID" "$WB_PID"; do
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "$1" >&2
    for log in coord wa wb; do
        [ -f "$TMP/$log.log" ] && {
            echo "---- $log.log" >&2
            tail -n 20 "$TMP/$log.log" >&2
        }
    done
    exit 1
}

wait_http() {
    i=0
    until curl -fsS "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 50 ] || { sleep 0.2; continue; }
        fail "$2"
    done
}

echo "== building rrmserve"
${GO:-go} build -o "$TMP/rrmserve" ./cmd/rrmserve

echo "== starting coordinator on $COORD_ADDR"
"$TMP/rrmserve" -coordinator -addr "$COORD_ADDR" -artifact-dir "$TMP/artifacts" \
    -heartbeat-ttl 2s -reconcile 200ms >"$TMP/coord.log" 2>&1 &
COORD_PID=$!
wait_http "$BASE/healthz" "coordinator never became healthy"

echo "== starting workers on $WA_ADDR and $WB_ADDR"
"$TMP/rrmserve" -addr "$WA_ADDR" -join "$BASE" -worker-id wa \
    -advertise "http://$WA_ADDR" -artifact-dir "$TMP/artifacts" \
    -heartbeat 200ms >"$TMP/wa.log" 2>&1 &
WA_PID=$!
"$TMP/rrmserve" -addr "$WB_ADDR" -join "$BASE" -worker-id wb \
    -advertise "http://$WB_ADDR" -artifact-dir "$TMP/artifacts" \
    -heartbeat 200ms >"$TMP/wb.log" 2>&1 &
WB_PID=$!

i=0
until curl -fsS "$BASE/healthz" 2>/dev/null | grep -q '"workers_routable": 2'; do
    i=$((i + 1))
    [ "$i" -ge 50 ] || { sleep 0.2; continue; }
    fail "workers never registered with the coordinator"
done

echo "== submitting $JOBS quick jobs through the coordinator"
: >"$TMP/ids"
seed=1
while [ "$seed" -le "$JOBS" ]; do
    CODE=$(curl -sS -o "$TMP/submit.json" -w '%{http_code}' \
        -H 'Content-Type: application/json' \
        -d "{\"scheme\":\"static-7\",\"workload\":\"GemsFDTD\",\"quick\":true,\"seed\":$seed}" \
        "$BASE/api/v1/jobs")
    case "$CODE" in
        200 | 202) ;;
        *) fail "submit $seed returned HTTP $CODE: $(cat "$TMP/submit.json")" ;;
    esac
    sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' "$TMP/submit.json" | head -n 1 >>"$TMP/ids"
    seed=$((seed + 1))
done
[ "$(wc -l <"$TMP/ids")" -eq "$JOBS" ] || fail "missing job ids"

echo "== killing worker wa mid-flight"
sleep 1
kill -9 "$WA_PID" 2>/dev/null || true
wait "$WA_PID" 2>/dev/null || true
WA_PID=""

echo "== waiting for all $JOBS jobs to complete despite the loss"
while IFS= read -r id; do
    i=0
    while :; do
        CODE=$(curl -sS -o "$TMP/result.json" -w '%{http_code}' \
            "$BASE/api/v1/jobs/$id/result" || echo 000)
        [ "$CODE" = 200 ] && break
        i=$((i + 1))
        [ "$i" -ge 600 ] && fail "job $id did not finish within 120s (last HTTP $CODE)"
        sleep 0.2
    done
    grep -q '"metrics"' "$TMP/result.json" || fail "job $id result has no metrics"
done <"$TMP/ids"

echo "== checking the dead worker left the ring"
i=0
until curl -fsS "$BASE/healthz" 2>/dev/null | grep -q '"workers_routable": 1'; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "dead worker never expired from the ring"
    sleep 0.2
done

echo "== resubmitting the batch: must run zero new simulations"
SIMS_BEFORE=$(curl -fsS "http://$WB_ADDR/metrics" | sed -n 's/^rrmserve_sims_executed_total \([0-9]*\)$/\1/p')
seed=1
while [ "$seed" -le "$JOBS" ]; do
    CODE=$(curl -sS -o "$TMP/resubmit.json" -w '%{http_code}' \
        -H 'Content-Type: application/json' \
        -d "{\"scheme\":\"static-7\",\"workload\":\"GemsFDTD\",\"quick\":true,\"seed\":$seed}" \
        "$BASE/api/v1/jobs")
    [ "$CODE" = 200 ] || fail "resubmit $seed returned HTTP $CODE, want 200 idempotency hit"
    grep -q '"created": *false' "$TMP/resubmit.json" || \
        fail "resubmit $seed created a new job: $(cat "$TMP/resubmit.json")"
    seed=$((seed + 1))
done
sleep 1
SIMS_AFTER=$(curl -fsS "http://$WB_ADDR/metrics" | sed -n 's/^rrmserve_sims_executed_total \([0-9]*\)$/\1/p')
[ "$SIMS_BEFORE" = "$SIMS_AFTER" ] || \
    fail "resubmission launched new simulations ($SIMS_BEFORE -> $SIMS_AFTER): duplicates"

echo "== checking cluster metrics"
curl -fsS "$BASE/metrics" >"$TMP/metrics.txt"
grep -q '^rrmserve_cluster_workers 1$' "$TMP/metrics.txt" || fail "cluster worker gauge wrong"
grep -q '^rrmserve_cluster_workers_lost_total 1$' "$TMP/metrics.txt" || fail "worker loss not counted"

echo "== cluster smoke test passed ($JOBS jobs, 1 worker killed, 0 duplicate sims)"
